// Tests for the serving subsystem: the JSON parser (including a full
// round trip of ResultTable::json() with hostile labels), request
// validation, the memoizing result cache, and an end-to-end in-process
// server exercised over real sockets.
#include <arpa/inet.h>
#include <chrono>
#include <cstring>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sstream>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "engine/engine.hpp"
#include "engine/experiment.hpp"
#include "serve/cache.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace copift;
using serve::Json;
using serve::ProtocolError;

// --- JSON parser -------------------------------------------------------------

TEST(ServeJson, ParsesLiterals) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
  EXPECT_TRUE(Json::parse("{}").as_object().empty());
  EXPECT_TRUE(Json::parse("  {\"a\": [1, 2]}  ").is_object());
}

TEST(ServeJson, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(Json::parse("3.5").as_number(), 3.5);
  EXPECT_DOUBLE_EQ(Json::parse("-2e3").as_number(), -2000.0);
  EXPECT_DOUBLE_EQ(Json::parse("0.125").as_number(), 0.125);
  EXPECT_EQ(Json::parse("0").as_u64(), 0u);
  EXPECT_EQ(Json::parse("42").as_u32(), 42u);
}

TEST(ServeJson, Keeps64BitIntegersExact) {
  // 18446744073709551615 is not representable as a double; the parser must
  // carry it exactly so cycle counts survive the wire.
  const auto v = Json::parse("18446744073709551615");
  EXPECT_EQ(v.as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v.dump(), "18446744073709551615");
  const auto round = Json::parse(v.dump());
  EXPECT_EQ(round.as_u64(), 18446744073709551615ull);
}

TEST(ServeJson, RejectsNonIntegerAsU64) {
  EXPECT_THROW((void)Json::parse("1.5").as_u64(), ProtocolError);
  EXPECT_THROW((void)Json::parse("-1").as_u64(), ProtocolError);
  EXPECT_THROW((void)Json::parse("1e30").as_u64(), ProtocolError);
  EXPECT_THROW((void)Json::parse("4294967296").as_u32(), ProtocolError);
}

TEST(ServeJson, ErrorsCarryByteOffsets) {
  const auto offset_of = [](const char* text) -> std::string {
    try {
      (void)Json::parse(text);
    } catch (const ProtocolError& e) {
      return e.what();
    }
    return {};
  };
  EXPECT_NE(offset_of("{\"a\":}").find("offset 5"), std::string::npos) << offset_of("{\"a\":}");
  EXPECT_NE(offset_of("[1,]").find("offset 3"), std::string::npos) << offset_of("[1,]");
  EXPECT_FALSE(offset_of("{\"a\":1} trailing").empty());
  EXPECT_FALSE(offset_of("01").empty());  // leading zeros are not JSON
  EXPECT_FALSE(offset_of("\"unterminated").empty());
  EXPECT_FALSE(offset_of("nan").empty());
}

TEST(ServeJson, RejectsDuplicateKeys) {
  try {
    (void)Json::parse("{\"a\":1,\"a\":2}");
    FAIL() << "duplicate key accepted";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("a"), std::string::npos) << e.what();
  }
}

TEST(ServeJson, EnforcesDepthBound) {
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  for (int i = 0; i < 80; ++i) deep += ']';
  EXPECT_THROW((void)Json::parse(deep), ProtocolError);          // default depth 64
  EXPECT_NO_THROW((void)Json::parse(deep, 128));                 // raised bound is fine
  EXPECT_THROW((void)Json::parse("[[[[1]]]]", 3), ProtocolError);
  EXPECT_NO_THROW((void)Json::parse("[[[[1]]]]", 4));
}

TEST(ServeJson, DecodesEscapesAndUnicode) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("A")").as_string(), "A");
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");        // é
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");    // €
  EXPECT_EQ(Json::parse(R"("😀")").as_string(),
            "\xf0\x9f\x98\x80");                                         // 😀 surrogate pair
  EXPECT_THROW((void)Json::parse(R"("\ud83d")"), ProtocolError);         // lone high surrogate
  EXPECT_THROW((void)Json::parse(R"("\q")"), ProtocolError);
}

TEST(ServeJson, DumpRoundTripsHostileStrings) {
  const std::string hostile = "fifo=1,\"deep\" mode\nline2\ttab\\slash";
  const Json v = Json::string(hostile);
  EXPECT_EQ(Json::parse(v.dump()).as_string(), hostile);
}

TEST(ServeJson, ObjectPreservesInsertionOrder) {
  const Json v = Json::parse("{\"z\":1,\"a\":2,\"m\":3}");
  const auto& obj = v.as_object();
  ASSERT_EQ(obj.size(), 3u);
  EXPECT_EQ(obj[0].first, "z");
  EXPECT_EQ(obj[1].first, "a");
  EXPECT_EQ(obj[2].first, "m");
  EXPECT_EQ(v.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
  EXPECT_EQ(v.at("m").as_u64(), 3u);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW((void)v.at("missing"), ProtocolError);
}

// --- ResultTable::json() through the parser ----------------------------------

TEST(ServeJson, ResultTableJsonRoundTripsExactly) {
  // The repo could always *write* JSON; this proves the new reader accepts
  // everything the writer produces, including the hostile params label the
  // serializer tests use, with row-exact values.
  const std::string hostile = "fifo=1,\"deep\" mode\nline2";
  engine::Experiment e;
  e.over("exp").n(64).block(16).verify(false);
  e.with_params(hostile, sim::SimParams{});
  engine::SimEngine pool(1);
  const auto table = e.run(pool);
  ASSERT_EQ(table.size(), 1u);

  const Json doc = Json::parse(serve::single_line(table.json()));
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 1u);
  const Json& row = doc.as_array().front();
  EXPECT_EQ(row.at("kernel").as_string(), "exp");
  EXPECT_EQ(row.at("variant").as_string(), "copift");
  EXPECT_EQ(row.at("n").as_u32(), 64u);
  EXPECT_EQ(row.at("block").as_u32(), 16u);
  EXPECT_EQ(row.at("params").as_string(), hostile);
  EXPECT_EQ(row.at("verified").as_bool(), false);
  EXPECT_EQ(row.at("cycles").as_u64(), table.at(0).run.result.cycles);
  EXPECT_DOUBLE_EQ(row.at("ipc").as_number(), table.at(0).ipc());
  EXPECT_DOUBLE_EQ(row.at("power_mw").as_number(), table.at(0).power_mw());
  // Stall counters are u64s; spot-check one survives exactly.
  EXPECT_EQ(row.at("stalls").at("int_issue_cycles").as_u64(),
            table.at(0).run.region.int_issue_cycles());
}

// --- request validation ------------------------------------------------------

TEST(ServeRequest, ParsesRunRequestWithDefaults) {
  const auto r = serve::parse_request(
      R"({"id":7,"type":"run","workloads":["exp"],"block":[16,32]})", 1000);
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.type, serve::Request::Type::kRun);
  ASSERT_EQ(r.workloads.size(), 1u);
  EXPECT_EQ(r.workloads[0], "exp");
  EXPECT_TRUE(r.variants.empty());  // absent axes take workload defaults
  EXPECT_EQ(r.blocks, (std::vector<std::uint32_t>{16, 32}));
  EXPECT_TRUE(r.verify);
  EXPECT_TRUE(r.progress);
}

TEST(ServeRequest, HealthAndStatsNeedNoAxes) {
  EXPECT_EQ(serve::parse_request(R"({"id":1,"type":"health"})", 10).type,
            serve::Request::Type::kHealth);
  EXPECT_EQ(serve::parse_request(R"({"id":2,"type":"stats"})", 10).type,
            serve::Request::Type::kStats);
}

TEST(ServeRequest, UnknownWorkloadListsRegistry) {
  try {
    (void)serve::parse_request(R"({"id":1,"type":"run","workloads":["nope"]})", 10);
    FAIL() << "unknown workload accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nope"), std::string::npos) << what;
    EXPECT_NE(what.find("exp"), std::string::npos) << what;  // registered names listed
  }
}

TEST(ServeRequest, UnknownKeysListAllowedKeys) {
  try {
    (void)serve::parse_request(R"({"id":1,"type":"run","workloads":["exp"],"bogus":1})", 10);
    FAIL() << "unknown key accepted";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
    EXPECT_NE(what.find("workloads"), std::string::npos) << what;
  }
}

TEST(ServeRequest, RejectsBadAxisValues) {
  EXPECT_THROW((void)serve::parse_request(
                   R"({"id":1,"type":"run","workloads":["exp"],"n":[0]})", 10),
               Error);
  EXPECT_THROW((void)serve::parse_request(
                   R"({"id":1,"type":"run","workloads":["exp"],"block":[-4]})", 10),
               Error);
  EXPECT_THROW((void)serve::parse_request(
                   R"({"id":1,"type":"run","workloads":["exp"],"variants":["quantum"]})", 10),
               Error);
  // Seed 0 is a legal seed value.
  EXPECT_NO_THROW((void)serve::parse_request(
      R"({"id":1,"type":"run","workloads":["exp"],"seeds":[0]})", 10));
}

TEST(ServeRequest, PreValidatesGridPoints) {
  // cores=3 does not divide n=256: Workload::validate rejects the point, and
  // the request dies at parse time instead of mid-sweep.
  try {
    (void)serve::parse_request(
        R"({"id":1,"type":"run","workloads":["exp"],"n":[256],"cores":[3]})", 10);
    FAIL() << "invalid grid point accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("divide"), std::string::npos) << e.what();
  }
}

TEST(ServeRequest, EnforcesMaxPoints) {
  try {
    (void)serve::parse_request(
        R"({"id":1,"type":"run","workloads":["exp"],"seeds":[1,2,3,4,5,6]})", 5);
    FAIL() << "oversized grid accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("6"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("5"), std::string::npos) << e.what();
  }
}

TEST(ServeRequest, RejectsHugeGridWithoutIterating) {
  // The grid size is a *product* of axis sizes, so a compact line can encode
  // an astronomical cross product (here 2000^4 = 1.6e13 points). The limit
  // must be enforced on the product of sizes, not by counting inside the
  // expansion loop — this request must be rejected in well under a second.
  std::string axis = "[";
  for (int i = 1; i <= 2000; ++i) {
    if (i > 1) axis += ',';
    axis += std::to_string(i);
  }
  axis += ']';
  const std::string line = R"({"id":1,"type":"run","workloads":["exp"],"n":)" + axis +
                           R"(,"block":)" + axis + R"(,"cores":)" + axis + R"(,"seeds":)" +
                           axis + "}";
  const auto t0 = std::chrono::steady_clock::now();
  try {
    (void)serve::parse_request(line, 65536);
    FAIL() << "huge grid accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("65536"), std::string::npos) << e.what();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1000)
      << "max_points check iterated the cross product";
}

// --- result cache ------------------------------------------------------------

serve::ResultKey test_key(std::uint32_t seed) {
  serve::ResultKey key;
  key.workload = "exp";
  key.n = 64;
  key.block = 16;
  key.seed = seed;
  key.cores = 1;
  key.params_fingerprint = "test";
  return key;
}

engine::ResultRow dummy_row(std::uint64_t cycles) {
  engine::ResultRow row;
  row.run.result.cycles = cycles;
  return row;
}

TEST(ServeCache, MissThenHit) {
  serve::ResultCache cache(4);
  serve::ResultCache::EntryPtr entry;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), entry), serve::ResultCache::Claim::kOwned);
  cache.publish(entry, dummy_row(123));

  serve::ResultCache::EntryPtr again;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), again), serve::ResultCache::Claim::kHit);
  EXPECT_EQ(again->wait().run.result.cycles, 123u);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ServeCache, CoalescesConcurrentClaims) {
  serve::ResultCache cache(4);
  serve::ResultCache::EntryPtr owner;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), owner), serve::ResultCache::Claim::kOwned);

  serve::ResultCache::EntryPtr shared;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), shared), serve::ResultCache::Claim::kShared);
  EXPECT_EQ(owner.get(), shared.get());

  std::uint64_t seen = 0;
  std::thread waiter([&] { seen = shared->wait().run.result.cycles; });
  cache.publish(owner, dummy_row(77));
  waiter.join();
  EXPECT_EQ(seen, 77u);
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(ServeCache, FailedEntriesRetryInsteadOfCachingTheError) {
  serve::ResultCache cache(4);
  serve::ResultCache::EntryPtr entry;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), entry), serve::ResultCache::Claim::kOwned);

  serve::ResultCache::EntryPtr waiter;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), waiter), serve::ResultCache::Claim::kShared);
  cache.fail(test_key(1), entry, "simulated explosion");
  try {
    (void)waiter->wait();
    FAIL() << "failed entry returned a row";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("simulated explosion"), std::string::npos);
  }

  // The key was dropped: the next request claims it fresh.
  serve::ResultCache::EntryPtr retry;
  EXPECT_EQ(cache.lookup_or_claim(test_key(1), retry), serve::ResultCache::Claim::kOwned);
  EXPECT_EQ(cache.stats().failures, 1u);
}

TEST(ServeCache, EvictsLeastRecentlyUsed) {
  serve::ResultCache cache(2);
  for (std::uint32_t seed = 1; seed <= 2; ++seed) {
    serve::ResultCache::EntryPtr e;
    ASSERT_EQ(cache.lookup_or_claim(test_key(seed), e), serve::ResultCache::Claim::kOwned);
    cache.publish(e, dummy_row(seed));
  }
  // Touch seed 1 so seed 2 becomes the LRU victim.
  serve::ResultCache::EntryPtr touch;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), touch), serve::ResultCache::Claim::kHit);

  serve::ResultCache::EntryPtr e3;
  ASSERT_EQ(cache.lookup_or_claim(test_key(3), e3), serve::ResultCache::Claim::kOwned);
  cache.publish(e3, dummy_row(3));

  serve::ResultCache::EntryPtr probe;
  EXPECT_EQ(cache.lookup_or_claim(test_key(1), probe), serve::ResultCache::Claim::kHit);
  EXPECT_EQ(cache.lookup_or_claim(test_key(2), probe), serve::ResultCache::Claim::kOwned);

  // Two evictions: seed 2 when seed 3 arrived, then seed 3 when the seed-2
  // probe re-claimed its key; capacity is never exceeded by completed entries.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ServeCache, InFlightEntriesAreNotEvicted) {
  serve::ResultCache cache(1);
  serve::ResultCache::EntryPtr inflight;
  ASSERT_EQ(cache.lookup_or_claim(test_key(1), inflight), serve::ResultCache::Claim::kOwned);

  // A second key overflows capacity, but the only candidate is in flight and
  // must be skipped; the original claim stays reachable.
  serve::ResultCache::EntryPtr other;
  ASSERT_EQ(cache.lookup_or_claim(test_key(2), other), serve::ResultCache::Claim::kOwned);
  serve::ResultCache::EntryPtr probe;
  EXPECT_EQ(cache.lookup_or_claim(test_key(1), probe), serve::ResultCache::Claim::kShared);
  cache.publish(inflight, dummy_row(1));
  cache.publish(other, dummy_row(2));
}

TEST(ServeCache, KeyDistinguishesParamsAndVerify) {
  serve::ResultCache cache(8);
  auto base = test_key(1);
  auto no_verify = base;
  no_verify.verify = false;
  auto other_params = base;
  other_params.params_fingerprint = "different";

  serve::ResultCache::EntryPtr a, b, c;
  EXPECT_EQ(cache.lookup_or_claim(base, a), serve::ResultCache::Claim::kOwned);
  EXPECT_EQ(cache.lookup_or_claim(no_verify, b), serve::ResultCache::Claim::kOwned);
  EXPECT_EQ(cache.lookup_or_claim(other_params, c), serve::ResultCache::Claim::kOwned);
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
}

TEST(ServeCache, ParamsFingerprintTracksEveryField) {
  sim::SimParams base;
  const std::string before = serve::params_fingerprint(base);
  EXPECT_EQ(before, serve::params_fingerprint(sim::SimParams{}));  // deterministic

  sim::SimParams changed = base;
  changed.offload_fifo_depth += 1;
  EXPECT_NE(serve::params_fingerprint(changed), before);

  sim::SimParams lat = base;
  lat.fpu.fma += 1;
  EXPECT_NE(serve::params_fingerprint(lat), before);
}

// --- cache persistence -------------------------------------------------------

/// A key in the canonical serving configuration (the only kind save()
/// persists): default SimParams at the key's core count.
serve::ResultKey persist_key(std::uint32_t seed, std::uint32_t cores = 1) {
  serve::ResultKey key;
  key.workload = "exp";
  key.n = 64;
  key.block = 16;
  key.seed = seed;
  key.cores = cores;
  sim::SimParams params;
  params.num_cores = cores;
  key.params_fingerprint = serve::params_fingerprint(params);
  return key;
}

/// A row with distinctive bits in every persisted field.
engine::ResultRow persist_row(std::uint32_t cores) {
  engine::ResultRow row;
  row.run.result.halted = true;
  row.run.result.cycles = 0xdeadbeefcafeull;
  row.run.result.exit_code = 7;
  row.run.verified = true;
  row.run.total.cycles = 1111;
  row.run.total.fp_retired = 2222;
  row.run.region.cycles = 333;
  row.run.region_energy.total_pj = 1.25e6;
  row.run.region_energy.memory_pj = 0.1;  // not exactly representable: bit test
  row.run.region_energy.cycles = 333;
  for (std::uint32_t h = 0; h < cores; ++h) {
    sim::ActivityCounters hc;
    hc.cycles = 1000 + h;
    row.run.hart_region.push_back(hc);
    energy::EnergyReport he;
    he.total_pj = 10.5 + h;
    row.run.hart_energy.push_back(he);
  }
  return row;
}

std::shared_ptr<const workload::Workload> registry_resolver(const std::string& name) {
  return workload::WorkloadRegistry::instance().find(name);
}

TEST(ServeCachePersist, SaveLoadRoundTripsEveryField) {
  serve::ResultCache cache(8);
  serve::ResultCache::EntryPtr entry;
  ASSERT_EQ(cache.lookup_or_claim(persist_key(1, 4), entry), serve::ResultCache::Claim::kOwned);
  cache.publish(entry, persist_row(4));

  std::stringstream file;
  EXPECT_EQ(cache.save(file), 1u);

  serve::ResultCache reloaded(8);
  EXPECT_EQ(reloaded.load(file, registry_resolver), 1u);
  EXPECT_EQ(reloaded.stats().reloaded, 1u);

  serve::ResultCache::EntryPtr hit;
  ASSERT_EQ(reloaded.lookup_or_claim(persist_key(1, 4), hit), serve::ResultCache::Claim::kHit);
  const engine::ResultRow& row = hit->wait();
  const engine::ResultRow want = persist_row(4);
  EXPECT_EQ(row.run.result.halted, want.run.result.halted);
  EXPECT_EQ(row.run.result.cycles, want.run.result.cycles);
  EXPECT_EQ(row.run.result.exit_code, want.run.result.exit_code);
  EXPECT_EQ(row.run.verified, want.run.verified);
  EXPECT_EQ(std::memcmp(&row.run.total, &want.run.total, sizeof(sim::ActivityCounters)), 0);
  EXPECT_EQ(std::memcmp(&row.run.region, &want.run.region, sizeof(sim::ActivityCounters)), 0);
  // Doubles persist as bit patterns, so equality is exact.
  EXPECT_EQ(row.run.region_energy.total_pj, want.run.region_energy.total_pj);
  EXPECT_EQ(row.run.region_energy.memory_pj, want.run.region_energy.memory_pj);
  ASSERT_EQ(row.run.hart_region.size(), 4u);
  ASSERT_EQ(row.run.hart_energy.size(), 4u);
  for (std::uint32_t h = 0; h < 4; ++h) {
    EXPECT_EQ(row.run.hart_region[h].cycles, 1000u + h);
    EXPECT_EQ(row.run.hart_energy[h].total_pj, 10.5 + h);
  }
  // The point was reconstructed from the key + registry.
  ASSERT_NE(row.point.workload, nullptr);
  EXPECT_EQ(row.point.workload->name(), "exp");
  EXPECT_EQ(row.point.config.seed, 1u);
  EXPECT_EQ(row.point.config.cores, 4u);
  EXPECT_EQ(row.point.params.num_cores, 4u);
}

TEST(ServeCachePersist, RejectsVersionAndLayoutMismatch) {
  serve::ResultCache cache(4);
  std::stringstream v2("copift-cache v2 counters=" + std::to_string(sizeof(sim::ActivityCounters)) +
                       "\n");
  EXPECT_THROW((void)cache.load(v2, registry_resolver), Error);
  std::stringstream layout("copift-cache v1 counters=8\n");
  EXPECT_THROW((void)cache.load(layout, registry_resolver), Error);
  std::stringstream garbage("not a cache file\n");
  EXPECT_THROW((void)cache.load(garbage, registry_resolver), Error);
  EXPECT_EQ(cache.stats().reloaded, 0u);
}

TEST(ServeCachePersist, SkipsInFlightAndNonCanonicalEntries) {
  serve::ResultCache cache(8);
  // In flight: claimed but never published.
  serve::ResultCache::EntryPtr inflight;
  ASSERT_EQ(cache.lookup_or_claim(persist_key(1), inflight), serve::ResultCache::Claim::kOwned);
  // Non-canonical fingerprint (a custom-params row; the daemon never makes
  // one, and load could not reconstruct its SimParams).
  serve::ResultCache::EntryPtr custom;
  ASSERT_EQ(cache.lookup_or_claim(test_key(9), custom), serve::ResultCache::Claim::kOwned);
  cache.publish(custom, dummy_row(9));

  std::stringstream file;
  EXPECT_EQ(cache.save(file), 0u);
  cache.publish(inflight, dummy_row(1));
}

TEST(ServeCachePersist, UnknownWorkloadsAndResidentKeysAreSkipped) {
  serve::ResultCache cache(8);
  serve::ResultCache::EntryPtr a, b;
  auto ghost = persist_key(1);
  ghost.workload = "workload-from-the-future";
  ASSERT_EQ(cache.lookup_or_claim(ghost, a), serve::ResultCache::Claim::kOwned);
  cache.publish(a, dummy_row(1));
  ASSERT_EQ(cache.lookup_or_claim(persist_key(2), b), serve::ResultCache::Claim::kOwned);
  cache.publish(b, dummy_row(2));

  std::stringstream file;
  EXPECT_EQ(cache.save(file), 2u);

  // Target cache already holds key 2 with different cycles: the live entry
  // wins; the ghost workload cannot be resolved and is dropped.
  serve::ResultCache target(8);
  serve::ResultCache::EntryPtr live;
  ASSERT_EQ(target.lookup_or_claim(persist_key(2), live), serve::ResultCache::Claim::kOwned);
  target.publish(live, dummy_row(42));
  EXPECT_EQ(target.load(file, registry_resolver), 0u);
  serve::ResultCache::EntryPtr probe;
  ASSERT_EQ(target.lookup_or_claim(persist_key(2), probe), serve::ResultCache::Claim::kHit);
  EXPECT_EQ(probe->wait().run.result.cycles, 42u);
}

TEST(ServeCachePersist, LoadPreservesLruOrder) {
  serve::ResultCache cache(8);
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    serve::ResultCache::EntryPtr e;
    ASSERT_EQ(cache.lookup_or_claim(persist_key(seed), e), serve::ResultCache::Claim::kOwned);
    cache.publish(e, dummy_row(seed));
  }
  // Touch seed 1: recency order (MRU first) is now 1, 3, 2.
  serve::ResultCache::EntryPtr touch;
  ASSERT_EQ(cache.lookup_or_claim(persist_key(1), touch), serve::ResultCache::Claim::kHit);

  std::stringstream file;
  EXPECT_EQ(cache.save(file), 3u);

  // Reload into a capacity-2 cache: the LRU entry (seed 2) must be the one
  // evicted during the reload, proving the order survived the round trip.
  serve::ResultCache small(2);
  EXPECT_EQ(small.load(file, registry_resolver), 3u);
  serve::ResultCache::EntryPtr probe;
  EXPECT_EQ(small.lookup_or_claim(persist_key(2), probe), serve::ResultCache::Claim::kOwned);
}

// --- end-to-end server -------------------------------------------------------

/// Minimal blocking test client for the line protocol.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      throw Error("test client connect failed");
    }
    conn_ = std::make_unique<serve::Connection>(fd_);
  }

  void send(const std::string& line) { ASSERT_TRUE(conn_->send_line(line)); }

  /// Next line as parsed JSON (30 s safety timeout).
  Json next() {
    std::string line;
    const auto status = conn_->read_line(line, -1, 30000, 1 << 24);
    if (status != serve::Connection::ReadStatus::kLine) {
      throw Error("test client read failed (status " +
                  std::to_string(static_cast<int>(status)) + ")");
    }
    return Json::parse(line);
  }

  /// Skip accepted/progress events and return the final result/error event.
  Json final_event(std::uint64_t id) {
    while (true) {
      const Json doc = next();
      EXPECT_EQ(doc.at("id").as_u64(), id);
      const std::string& event = doc.at("event").as_string();
      if (event == "result" || event == "error" || event == "health" || event == "stats") {
        return doc;
      }
    }
  }

 private:
  int fd_ = -1;
  std::unique_ptr<serve::Connection> conn_;
};

serve::ServerConfig small_server_config() {
  serve::ServerConfig config;
  config.port = 0;  // ephemeral
  config.engine_threads = 2;
  config.cache_entries = 64;
  return config;
}

TEST(ServeServer, ResultsAreBitIdenticalToBatchMode) {
  serve::Server server(small_server_config());
  server.start();

  TestClient client(server.port());
  client.send(R"({"id":5,"type":"run","workloads":["exp"],)"
              R"("variants":["baseline","copift"],"n":[128],"block":[16,32]})");
  const Json reply = client.final_event(5);
  ASSERT_EQ(reply.at("event").as_string(), "result") << reply.dump();

  // The same grid through batch mode, dumped through the same parser: the
  // serialized rows must match byte for byte (exact cycles, %.17g doubles).
  engine::Experiment e;
  e.over("exp").n(128).sweep({16, 32});
  e.over({workload::Variant::kBaseline, workload::Variant::kCopift});
  engine::SimEngine pool(2);
  const auto table = e.run(pool);
  const Json batch = Json::parse(serve::single_line(table.json()));

  EXPECT_EQ(reply.at("rows").dump(), batch.dump());
  EXPECT_EQ(reply.at("rows").as_array().size(), 4u);
}

TEST(ServeServer, CachesRepeatAndConcurrentRequests) {
  serve::Server server(small_server_config());
  server.start();

  const std::string sweep = R"({"id":1,"type":"run","workloads":["exp"],)"
                            R"("n":[256],"block":[16,32],"progress":false})";

  // Four concurrent clients issue the identical sweep; then one repeats it.
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      TestClient c(server.port());
      c.send(sweep);
      const Json reply = c.final_event(1);
      if (reply.at("event").as_string() == "result" &&
          reply.at("rows").as_array().size() == 2) {
        ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 4);

  TestClient c(server.port());
  c.send(sweep);
  const Json repeat = c.final_event(1);
  ASSERT_EQ(repeat.at("event").as_string(), "result");
  // The repeat is served entirely from cache.
  EXPECT_EQ(repeat.at("cache").at("hits").as_u64(), 2u);
  EXPECT_EQ(repeat.at("cache").at("simulated").as_u64(), 0u);

  // 5 requests x 2 points = 10 requested, but only 2 unique points simulated.
  const auto stats = server.stats();
  EXPECT_EQ(stats.points_requested, 10u);
  EXPECT_EQ(stats.points_simulated, 2u);
  EXPECT_EQ(stats.cache.hits + stats.cache.coalesced, 8u);
}

TEST(ServeServer, BadRequestsKeepTheConnectionUsable) {
  serve::Server server(small_server_config());
  server.start();

  TestClient client(server.port());
  client.send("this is not json");
  Json err = client.next();
  EXPECT_EQ(err.at("event").as_string(), "error");

  client.send(R"({"id":9,"type":"run","workloads":["nope"]})");
  err = client.next();
  EXPECT_EQ(err.at("event").as_string(), "error");
  EXPECT_EQ(err.at("id").as_u64(), 9u);  // id recovered from the bad request
  EXPECT_NE(err.at("message").as_string().find("nope"), std::string::npos);

  // The connection survived both errors.
  client.send(R"({"id":10,"type":"health"})");
  const Json health = client.final_event(10);
  EXPECT_EQ(health.at("status").as_string(), "ok");
}

TEST(ServeServer, GracefulShutdownDrainsQueuedWork) {
  serve::Server server(small_server_config());
  server.start();

  TestClient client(server.port());
  client.send(R"({"id":3,"type":"run","workloads":["exp"],"n":[256],)"
              R"("block":[8,16,32,64],"progress":false})");
  // Wait until the sweep is queued, then shut down: the queued work must
  // still complete and its response flush before the threads exit.
  const Json accepted = client.next();
  ASSERT_EQ(accepted.at("event").as_string(), "accepted");
  server.request_shutdown();
  const Json reply = client.final_event(3);
  ASSERT_EQ(reply.at("event").as_string(), "result") << reply.dump();
  EXPECT_EQ(reply.at("rows").as_array().size(), 4u);
  server.wait();  // all threads join; no hang
}

}  // namespace

// Workload-registry tests: registration semantics, name lookup errors, the
// KernelId compatibility shim, workload-qualified validation messages, and
// the two out-of-paper workloads (axpy, softmax) running end-to-end through
// the batch engine — proving the registry API is genuinely open.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "engine/experiment.hpp"
#include "kernels/kernels.hpp"
#include "kernels/runner.hpp"
#include "workload/workload.hpp"

namespace copift::workload {
namespace {

/// Minimal workload for registry-semantics tests (never simulated).
class DummyWorkload final : public Workload {
 public:
  explicit DummyWorkload(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::string generate(Variant, const WorkloadConfig&) const override {
    return "_start:\n  ecall\n";
  }
  void verify_outputs(sim::Cluster&, Variant, const WorkloadConfig&) const override {}

 private:
  std::string name_;
};

// --- registry semantics (on a local instance, not the process-wide one) -----

TEST(WorkloadRegistry, RegistersAndResolvesByName) {
  WorkloadRegistry registry;
  registry.add(std::make_shared<DummyWorkload>("beta"));
  registry.add(std::make_shared<DummyWorkload>("alpha"));
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.find("alpha"), nullptr);
  EXPECT_EQ(registry.find("alpha")->name(), "alpha");
  EXPECT_EQ(registry.find("gamma"), nullptr);
  const auto names = registry.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");  // sorted
  EXPECT_EQ(names[1], "beta");
}

TEST(WorkloadRegistry, DuplicateRegistrationThrows) {
  WorkloadRegistry registry;
  registry.add(std::make_shared<DummyWorkload>("dup"));
  try {
    registry.add(std::make_shared<DummyWorkload>("dup"));
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dup"), std::string::npos);
  }
  EXPECT_THROW(registry.add(nullptr), Error);
  EXPECT_THROW(registry.add(std::make_shared<DummyWorkload>("")), Error);
}

TEST(WorkloadRegistry, UnknownNameListsRegisteredWorkloads) {
  WorkloadRegistry registry;
  registry.add(std::make_shared<DummyWorkload>("alpha"));
  registry.add(std::make_shared<DummyWorkload>("beta"));
  try {
    (void)registry.at("gamma");
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gamma"), std::string::npos);
    EXPECT_NE(what.find("alpha"), std::string::npos);
    EXPECT_NE(what.find("beta"), std::string::npos);
  }
}

// --- the process-wide registry and the KernelId compat shim ------------------

TEST(WorkloadRegistry, ProcessRegistryHoldsPaperAndExtraWorkloads) {
  const auto names = WorkloadRegistry::instance().names();
  for (const auto expected :
       {"exp", "log", "poly_lcg", "pi_lcg", "poly_xoshiro128p", "pi_xoshiro128p", "axpy",
        "softmax"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end()) << expected;
  }
}

TEST(KernelIdShim, ResolvesAllSixPaperKernels) {
  kernels::KernelConfig cfg;
  cfg.n = 64;
  cfg.block = 16;
  for (const auto id : kernels::kAllKernels) {
    const std::string name = kernels::kernel_name(id);
    const auto handle = WorkloadRegistry::instance().at(name);
    EXPECT_EQ(handle->name(), name);
    // The enum path and the registry path generate identical programs.
    const auto via_enum = kernels::generate(id, Variant::kCopift, cfg);
    const auto via_registry = workload::generate(name, Variant::kCopift, cfg);
    EXPECT_EQ(via_enum.source, via_registry.source);
    EXPECT_EQ(via_enum.name(), name);
    EXPECT_NE(via_enum.workload, nullptr);
  }
}

TEST(KernelIdShim, TranscendentalClassification) {
  EXPECT_TRUE(kernels::is_transcendental(kernels::KernelId::kExp));
  EXPECT_TRUE(kernels::is_transcendental("log"));
  EXPECT_FALSE(kernels::is_transcendental(kernels::KernelId::kPiLcg));
  EXPECT_FALSE(kernels::is_transcendental("axpy"));
}

// --- validation errors name the workload and the offending values -----------

TEST(Validation, ErrorsCarryWorkloadVariantAndValues) {
  WorkloadConfig cfg;
  cfg.n = 1024;
  cfg.block = 48;  // does not divide 1024
  try {
    (void)workload::generate("exp", Variant::kCopift, cfg);
    FAIL() << "expected an exception";
  } catch (const ConfigError& e) {
    EXPECT_STREQ(e.what(), "exp/copift: block=48 does not divide n=1024");
  }

  cfg.block = 32;
  cfg.n = 30;
  try {
    (void)workload::generate("pi_lcg", Variant::kBaseline, cfg);
    FAIL() << "expected an exception";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pi_lcg/baseline"), std::string::npos);
    EXPECT_NE(what.find("n=30"), std::string::npos);
  }
}

TEST(Validation, UnsupportedVariantIsRejectedWithTheSupportedList) {
  try {
    (void)workload::generate("softmax", Variant::kCopift, WorkloadConfig{});
    FAIL() << "expected an exception";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("softmax/copift"), std::string::npos);
    EXPECT_NE(what.find("baseline"), std::string::npos);
  }
}

// --- the out-of-paper workloads run end-to-end through the engine -----------

TEST(OpenWorkloads, AxpyRunsAndVerifiesInBothVariants) {
  const auto axpy = WorkloadRegistry::instance().at("axpy");
  EXPECT_TRUE(axpy->supports(Variant::kBaseline));
  EXPECT_TRUE(axpy->supports(Variant::kCopift));
  WorkloadConfig cfg;
  cfg.n = 128;
  const auto base = kernels::run_kernel(axpy->instantiate(Variant::kBaseline, cfg));
  const auto cop = kernels::run_kernel(axpy->instantiate(Variant::kCopift, cfg));
  EXPECT_TRUE(base.verified);
  EXPECT_TRUE(cop.verified);
  // The SSR/FREP form approaches one element per cycle and beats the scalar
  // loop comfortably.
  EXPECT_LT(cop.region.cycles, base.region.cycles);
}

TEST(OpenWorkloads, AxpyAndSoftmaxSweepThroughTheEngine) {
  engine::SimEngine pool(2);
  const auto axpy_table = engine::Experiment()
                              .over("axpy")
                              .over({Variant::kBaseline, Variant::kCopift})
                              .sweep_n({128, 256})
                              .run(pool);
  ASSERT_EQ(axpy_table.size(), 4u);
  for (const auto& row : axpy_table.rows()) EXPECT_TRUE(row.run.verified);
  ASSERT_NE(axpy_table.find("axpy", Variant::kCopift, 256), nullptr);

  const auto softmax_table = engine::Experiment()
                                 .over("softmax")
                                 .over(Variant::kBaseline)
                                 .sweep_n({64, 128})
                                 .run(pool);
  ASSERT_EQ(softmax_table.size(), 2u);
  for (const auto& row : softmax_table.rows()) EXPECT_TRUE(row.run.verified);
  EXPECT_NE(softmax_table.csv().find("softmax,baseline,64"), std::string::npos);
}

TEST(OpenWorkloads, SteadyMetricsWorkForRegisteredWorkloads) {
  engine::SimEngine pool(2);
  const auto table = engine::Experiment()
                         .over({"axpy", "softmax"})
                         .over(Variant::kBaseline)
                         .steady(128, 256)
                         .run(pool);
  ASSERT_EQ(table.size(), 2u);
  for (const auto& row : table.rows()) {
    ASSERT_TRUE(row.steady);
    EXPECT_GT(row.metrics.cycles_per_item, 0.0);
    EXPECT_GT(row.metrics.energy_pj_per_item, 0.0);
    EXPECT_TRUE(row.run.verified);
  }
  // The direct steady helper agrees with the engine's steady mode.
  const auto direct = kernels::steady_metrics("axpy", Variant::kBaseline, WorkloadConfig{},
                                              128, 256);
  const auto* row = table.find("axpy", Variant::kBaseline);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(direct.delta_cycles, row->metrics.delta_cycles);
  EXPECT_EQ(direct.cycles_per_item, row->metrics.cycles_per_item);
}

}  // namespace
}  // namespace copift::workload

// Fidelity of the fast cycle loop (decode-once micro-op table + event-driven
// skip-ahead clock + allocation-free steady state).
//
// The fast path is only legal because it is bit-exact: every registry
// workload must produce identical cycles, counters, stall attribution, trace
// streams, energy and memory state whether the cluster ticks every cycle or
// jumps the clock over provable waits. These tests pin that equivalence at
// cores=1 and cores=4, exercise the skip-ahead wakeup logic with hand-built
// wait programs (divider, FREP drain, DMA), and verify the steady-state loop
// performs no heap allocation with tracing off (via the operator new
// override below).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "energy/energy.hpp"
#include "kernels/kernels.hpp"
#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/decode.hpp"
#include "sim/params.hpp"
#include "sim/trace.hpp"
#include "workload/workload.hpp"

// --- global allocation counter ---------------------------------------------
// Defining the global operators in this TU replaces them binary-wide; the
// counter lets AllocationFree.* bracket a code region and assert the heap
// was never touched. Counting is on allocation only (deallocation is free of
// interest here).
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace copift::sim {
namespace {

using workload::Variant;
using workload::WorkloadConfig;

struct SimRun {
  std::unique_ptr<Cluster> cluster;
  RunResult result;
};

SimRun run_workload(const kernels::GeneratedKernel& kernel, bool skip_ahead, bool tracing) {
  SimParams params;
  params.num_cores = kernel.config.cores;
  params.skip_ahead = skip_ahead;
  SimRun r;
  r.cluster = std::make_unique<Cluster>(rvasm::assemble(kernel.source), params);
  r.cluster->set_tracing(tracing);
  kernels::populate_inputs(*r.cluster, kernel);
  r.result = r.cluster->run();
  return r;
}

SimRun run_source(const std::string& source, bool skip_ahead, unsigned cores = 1) {
  SimParams params;
  params.num_cores = cores;
  params.skip_ahead = skip_ahead;
  SimRun r;
  r.cluster = std::make_unique<Cluster>(rvasm::assemble(source), params);
  r.result = r.cluster->run();
  return r;
}

/// Every field the stall taxonomy maps plus the issue/idle aggregates: if
/// these all match, the per-cycle attribution identity was preserved across
/// every skipped interval.
void expect_counters_equal(const ActivityCounters& a, const ActivityCounters& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.int_retired, b.int_retired);
  EXPECT_EQ(a.fp_retired, b.fp_retired);
  EXPECT_EQ(a.frep_replays, b.frep_replays);
  EXPECT_EQ(a.int_offloads, b.int_offloads);
  EXPECT_EQ(a.int_halt_cycles, b.int_halt_cycles);
  EXPECT_EQ(a.fpss_cfg_cycles, b.fpss_cfg_cycles);
  EXPECT_EQ(a.fpss_idle, b.fpss_idle);
  EXPECT_EQ(a.tcdm_reads, b.tcdm_reads);
  EXPECT_EQ(a.tcdm_writes, b.tcdm_writes);
  EXPECT_EQ(a.tcdm_conflicts, b.tcdm_conflicts);
  EXPECT_EQ(a.ssr_elements, b.ssr_elements);
  EXPECT_EQ(a.issr_indices, b.issr_indices);
  EXPECT_EQ(a.l0_hits, b.l0_hits);
  EXPECT_EQ(a.l0_refills, b.l0_refills);
  EXPECT_EQ(a.dma_busy_cycles, b.dma_busy_cycles);
  EXPECT_EQ(a.dma_bytes, b.dma_bytes);
  for (unsigned i = 0; i < kNumStallCauses; ++i) {
    const auto cause = static_cast<StallCause>(i);
    EXPECT_EQ(stall_cause_counter_value(a, cause), stall_cause_counter_value(b, cause))
        << "stall column " << stall_cause_counter_name(cause);
  }
}

/// The per-hart accounting identities (they do not hold on the multi-hart
/// aggregate, whose stall fields sum over harts while cycles takes the max).
void expect_identities(const ActivityCounters& c) {
  EXPECT_EQ(c.int_issue_cycles() + c.int_stall_cycles() + c.int_halt_cycles, c.cycles);
  EXPECT_EQ(c.fpss_issue_cycles() + c.fpss_stall_cycles() + c.fpss_idle, c.cycles);
}

void expect_traces_equal(const Tracer& a, const Tracer& b) {
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (std::size_t i = 0; i < a.entries().size(); ++i) {
    const TraceEntry& x = a.entries()[i];
    const TraceEntry& y = b.entries()[i];
    ASSERT_TRUE(x.cycle == y.cycle && x.pc == y.pc && x.unit == y.unit)
        << "trace entry " << i << " diverges at cycle " << x.cycle << " vs " << y.cycle;
  }
  // The stall stream is compared per unit track: within one unit events are
  // cycle-ordered in both modes, but a bulk-attributed skip window emits one
  // unit's events before the other's, so the merged stream may interleave the
  // tracks differently. Every consumer (report, Perfetto export) reads the
  // stream per unit, where the two modes must be bit-identical.
  ASSERT_EQ(a.stalls().size(), b.stalls().size());
  for (const TraceUnit unit : {TraceUnit::kIntCore, TraceUnit::kFpss}) {
    std::vector<StallEvent> xs, ys;
    for (const StallEvent& e : a.stalls()) {
      if (e.unit == unit) xs.push_back(e);
    }
    for (const StallEvent& e : b.stalls()) {
      if (e.unit == unit) ys.push_back(e);
    }
    ASSERT_EQ(xs.size(), ys.size()) << trace_unit_name(unit);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      ASSERT_TRUE(xs[i].cycle == ys[i].cycle && xs[i].cause == ys[i].cause)
          << trace_unit_name(unit) << " stall event " << i << ": cycle " << xs[i].cycle
          << " (" << stall_cause_name(xs[i].cause) << ") vs cycle " << ys[i].cycle << " ("
          << stall_cause_name(ys[i].cause) << ")";
    }
  }
}

WorkloadConfig small_config(std::uint32_t cores) {
  WorkloadConfig cfg;
  cfg.n = 768;
  cfg.block = 32;  // divides every per-hart chunk for cores in {1, 4}
  cfg.cores = cores;
  return cfg;
}

// --- whole-workload fidelity ------------------------------------------------

// Every registry workload, both variants, cores=1 and cores=4: skip-ahead ON
// must be bit-identical to per-cycle execution in cycles, every counter and
// stall column (aggregate and per hart), both trace streams, the energy
// estimate, and the verified memory outputs.
TEST(DecodeCacheFidelity, SkipAheadBitExactForAllWorkloads) {
  const energy::EnergyModel model;
  for (const auto name : kernels::kPaperWorkloads) {
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
      for (const std::uint32_t cores : {1u, 4u}) {
        SCOPED_TRACE(std::string(name) + "/" + workload::variant_name(variant) +
                     " cores=" + std::to_string(cores));
        const auto kernel = wl->instantiate(variant, small_config(cores));
        SimRun slow = run_workload(kernel, /*skip_ahead=*/false, /*tracing=*/true);
        SimRun fast = run_workload(kernel, /*skip_ahead=*/true, /*tracing=*/true);
        EXPECT_EQ(slow.result.cycles, fast.result.cycles);
        EXPECT_EQ(slow.result.exit_code, fast.result.exit_code);
        EXPECT_EQ(slow.cluster->skip_jumps(), 0u);
        expect_counters_equal(slow.cluster->counters(), fast.cluster->counters());
        for (unsigned h = 0; h < cores; ++h) {
          expect_identities(fast.cluster->complex(h).counters());
          expect_counters_equal(slow.cluster->complex(h).counters(),
                                fast.cluster->complex(h).counters());
          expect_traces_equal(slow.cluster->complex(h).tracer(),
                              fast.cluster->complex(h).tracer());
        }
        // Identical counters imply identical energy; assert it end to end.
        EXPECT_EQ(model.evaluate(slow.cluster->counters()).total_pj,
                  model.evaluate(fast.cluster->counters()).total_pj);
        EXPECT_NO_THROW(kernels::verify_outputs(*fast.cluster, kernel));
      }
    }
  }
}

// The decoded table is shared: two clusters over the same program instance
// decode once, not twice.
TEST(DecodeCacheFidelity, DecodedProgramSharedAcrossClusters) {
  auto program = std::make_shared<const rvasm::Program>(rvasm::assemble(R"(
  li a0, 1
  ecall
)"));
  const auto d1 = DecodedProgram::get(program);
  const auto d2 = DecodedProgram::get(program);
  EXPECT_EQ(d1.get(), d2.get());
  Cluster c1(program), c2(program);
  EXPECT_EQ(c1.run().cycles, c2.run().cycles);
}

// --- skip-ahead wakeup unit tests -------------------------------------------

// A dependent use of an iterative-divider result is a provable sleep: the
// scoreboard knows the exact ready cycle, so the fast loop must jump there
// in one hop and attribute every skipped cycle to the RAW stall column.
TEST(SkipAhead, DividerRawWaitIsSkippedExactly) {
  const std::string source = R"(
  li a0, 1000
  li a1, 7
  div a2, a0, a1
  add a3, a2, a2
  ecall
)";
  SimRun slow = run_source(source, /*skip_ahead=*/false);
  SimRun fast = run_source(source, /*skip_ahead=*/true);
  EXPECT_EQ(fast.result.cycles, slow.result.cycles);
  expect_counters_equal(slow.cluster->counters(), fast.cluster->counters());
  expect_identities(fast.cluster->counters());
  EXPECT_GT(fast.cluster->skip_jumps(), 0u);
  // The div latency dominates this program: most of the RAW wait must have
  // been covered by jumps rather than ticks.
  EXPECT_GE(fast.cluster->skipped_cycles(), 10u);
  EXPECT_EQ(fast.cluster->core().reg(13), 2u * (1000u / 7u));
}

// An FPSS drain wait (csrr fpss) while an FREP replays long-latency divides:
// the integer core is blocked, the FPSS sleeps on the FPU pipeline, and the
// fast loop must hop from completion to completion without disturbing the
// replay schedule.
TEST(SkipAhead, FrepDrainWaitIsSkippedExactly) {
  const std::string source = R"(
.data
val: .double 3.0
.text
  la a0, val
  fld fa0, 0(a0)
  fld fa1, 0(a0)
  li t0, 7          # 8 replays of a serially-dependent fdiv chain
  frep.o t0, 1
  fdiv.d fa1, fa1, fa0
  csrr t1, fpss     # block until the FPSS drains
  ecall
)";
  SimRun slow = run_source(source, /*skip_ahead=*/false);
  SimRun fast = run_source(source, /*skip_ahead=*/true);
  EXPECT_EQ(fast.result.cycles, slow.result.cycles);
  expect_counters_equal(slow.cluster->counters(), fast.cluster->counters());
  expect_identities(fast.cluster->counters());
  EXPECT_EQ(fast.cluster->counters().frep_replays, 7u);
  EXPECT_GT(fast.cluster->skip_jumps(), 0u);
  // 8 dependent 11-cycle divides: the bulk of the run is provable sleep.
  EXPECT_GE(fast.cluster->skipped_cycles(), 40u);
}

// A DMA transfer progressing while the core waits on a divider: clock jumps
// must advance the DMA engine chunk-exactly (same busy-cycle count and final
// memory as per-cycle execution).
TEST(SkipAhead, DmaAdvancesExactlyAcrossJumps) {
  const std::string source = R"(
.data
src: .space 512
dst: .space 512
.text
  la a0, src
  dmsrc a0
  la a1, dst
  dmdst a1
  li a2, 512
  dmcpy a3, a2
  li a0, 999
  li a1, 3
  div a2, a0, a1    # park the core on the divider while the DMA moves data
  add a4, a2, a2
  div a2, a0, a1
  add a4, a2, a2
wait:
  dmstat a5
  bnez a5, wait
  ecall
)";
  SimRun slow = run_source(source, /*skip_ahead=*/false);
  SimRun fast = run_source(source, /*skip_ahead=*/true);
  EXPECT_EQ(fast.result.cycles, slow.result.cycles);
  expect_counters_equal(slow.cluster->counters(), fast.cluster->counters());
  expect_identities(fast.cluster->counters());
  EXPECT_EQ(fast.cluster->dma().busy_cycles(), slow.cluster->dma().busy_cycles());
  EXPECT_EQ(fast.cluster->dma().bytes_moved(), 512u);
  EXPECT_GT(fast.cluster->skip_jumps(), 0u);
}

// The hardware barrier: harts arriving early sleep until the last one
// arrives. With per-hart arrival staggered by divider chains, the fast loop
// must wake every hart on the exact release cycle.
TEST(SkipAhead, HwBarrierWaitBitExactAcrossHarts) {
  const std::string source = R"(
  csrr t0, mhartid
  li t1, 1
  add t2, t0, t1
  li a0, 1000
loop:                 # hart h runs (h+1) dependent divides before the barrier
  div a1, a0, t2
  add a2, a1, a1
  addi t2, t2, -1
  bnez t2, loop
  csrr zero, barrier
  ecall
)";
  SimRun slow = run_source(source, /*skip_ahead=*/false, /*cores=*/4);
  SimRun fast = run_source(source, /*skip_ahead=*/true, /*cores=*/4);
  EXPECT_EQ(fast.result.cycles, slow.result.cycles);
  expect_counters_equal(slow.cluster->counters(), fast.cluster->counters());
  for (unsigned h = 0; h < 4; ++h) {
    expect_identities(fast.cluster->complex(h).counters());
    expect_counters_equal(slow.cluster->complex(h).counters(),
                          fast.cluster->complex(h).counters());
  }
  EXPECT_GT(fast.cluster->skip_jumps(), 0u);
}

// --- allocation-free steady state -------------------------------------------

// After warmup (ring FIFOs grown, lazy pages touched, completion heap
// sized), the cycle loop must not touch the heap at all with tracing off —
// for the full COPIFT kernel including SSR streams, FREP replays and the
// skip-ahead probes.
TEST(AllocationFree, SteadyStateDoesNotAllocate) {
  const auto wl = workload::WorkloadRegistry::instance().at("exp");
  const auto kernel = wl->instantiate(Variant::kCopift, small_config(1));
  SimParams params;
  params.num_cores = 1;
  Cluster cluster(rvasm::assemble(kernel.source), params);
  kernels::populate_inputs(cluster, kernel);
  // Warm up the first half of the run with the fast loop engaged.
  Cluster reference(rvasm::assemble(kernel.source), params);
  kernels::populate_inputs(reference, kernel);
  const std::uint64_t total = reference.run().cycles;
  while (!cluster.halted() && cluster.cycles() < total / 2) cluster.step_fast();
  ASSERT_FALSE(cluster.halted());
  const std::uint64_t before = g_alloc_count.load();
  while (!cluster.halted()) cluster.step_fast();
  EXPECT_EQ(g_alloc_count.load(), before)
      << "steady-state cycle loop allocated " << (g_alloc_count.load() - before)
      << " times";
  EXPECT_EQ(cluster.cycles(), total);
}

}  // namespace
}  // namespace copift::sim

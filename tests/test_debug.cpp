// Tests for the interactive debug subsystem: the RSP packet codec, DebugHub
// breakpoint/watchpoint/stepping semantics at 1 and 4 cores, the
// observation-only guarantee (a hub that is attached but idle leaves every
// registry workload bit-identical to a plain run), and a socket-level GDB
// stub session.
#include <algorithm>
#include <arpa/inet.h>
#include <cstring>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <set>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "common/error.hpp"
#include "debug/hub.hpp"
#include "debug/rsp.hpp"
#include "debug/stub.hpp"
#include "energy/energy.hpp"
#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/params.hpp"
#include "workload/workload.hpp"

namespace copift::debug {
namespace {

using kernels::GeneratedKernel;
using workload::Variant;
using workload::WorkloadConfig;

// --- RSP codec ---------------------------------------------------------------

TEST(RspCodec, ChecksumMatchesProtocolExamples) {
  // gdb's canonical example: "$OK#9a".
  EXPECT_EQ(rsp::checksum("OK"), 0x9a);
  EXPECT_EQ(rsp::checksum(""), 0x00);
  EXPECT_EQ(rsp::checksum("g"), 'g');
}

TEST(RspCodec, EscapeRoundTripsSpecialBytes) {
  const std::string payload = "a$b#c}d";
  const std::string escaped = rsp::escape(payload);
  EXPECT_EQ(escaped, "a}\x04" "b}\x03" "c}]d");
  EXPECT_EQ(rsp::unescape(escaped), payload);
  // Every byte value survives a round trip.
  std::string all;
  for (int b = 0; b < 256; ++b) all.push_back(static_cast<char>(b));
  EXPECT_EQ(rsp::unescape(rsp::escape(all)), all);
}

TEST(RspCodec, FrameProducesWellFormedPackets) {
  EXPECT_EQ(rsp::frame("OK"), "$OK#9a");
  // The checksum is computed over the *escaped* body.
  const std::string framed = rsp::frame("$");
  EXPECT_EQ(framed.substr(0, 3), "$}\x04");
  EXPECT_EQ(framed.substr(3, 1), "#");
}

TEST(RspCodec, HexHelpers) {
  EXPECT_EQ(rsp::to_hex("OK"), "4f4b");
  EXPECT_EQ(rsp::from_hex("4f4b").value(), "OK");
  EXPECT_FALSE(rsp::from_hex("4f4").has_value());   // odd length
  EXPECT_FALSE(rsp::from_hex("zz").has_value());    // non-hex
  EXPECT_EQ(rsp::hex_u32_le(0x12345678u), "78563412");
  EXPECT_EQ(rsp::parse_u32_le("78563412").value(), 0x12345678u);
  EXPECT_EQ(rsp::hex_u64_le(0x1122334455667788ull), "8877665544332211");
  EXPECT_EQ(rsp::parse_u64_le("8877665544332211").value(), 0x1122334455667788ull);
  EXPECT_EQ(rsp::parse_hex_num("10ab").value(), 0x10abu);
  EXPECT_FALSE(rsp::parse_hex_num("").has_value());
  EXPECT_FALSE(rsp::parse_hex_num("12345678123456789").has_value());  // 17 digits
}

TEST(RspCodec, ReaderParsesFramesAcksAndInterrupts) {
  rsp::PacketReader reader;
  reader.feed("+$OK#9a-\x03");
  auto e1 = reader.next();
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->kind, rsp::PacketReader::Event::Kind::kAck);
  auto e2 = reader.next();
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->kind, rsp::PacketReader::Event::Kind::kPacket);
  EXPECT_EQ(e2->payload, "OK");
  auto e3 = reader.next();
  ASSERT_TRUE(e3.has_value());
  EXPECT_EQ(e3->kind, rsp::PacketReader::Event::Kind::kNack);
  auto e4 = reader.next();
  ASSERT_TRUE(e4.has_value());
  EXPECT_EQ(e4->kind, rsp::PacketReader::Event::Kind::kInterrupt);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(RspCodec, ReaderHandlesIncrementalFeedAndEscapes) {
  // Feed an escaped frame one byte at a time; the packet must only pop out
  // once complete, with the payload unescaped.
  const std::string payload = "X$#}Y";
  const std::string framed = rsp::frame(payload);
  rsp::PacketReader reader;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    reader.feed(framed.substr(i, 1));
    EXPECT_FALSE(reader.next().has_value()) << "byte " << i;
  }
  reader.feed(framed.substr(framed.size() - 1));
  const auto event = reader.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, rsp::PacketReader::Event::Kind::kPacket);
  EXPECT_EQ(event->payload, payload);
}

TEST(RspCodec, ReaderFlagsBadChecksumAndSkipsGarbage) {
  rsp::PacketReader reader;
  reader.feed("garbage$OK#00noise$OK#9a");
  auto bad = reader.next();
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->kind, rsp::PacketReader::Event::Kind::kBadChecksum);
  auto good = reader.next();
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->kind, rsp::PacketReader::Event::Kind::kPacket);
  EXPECT_EQ(good->payload, "OK");
}

// --- DebugHub ----------------------------------------------------------------

struct HubFixture {
  GeneratedKernel kernel;
  std::unique_ptr<sim::Cluster> cluster;
  std::unique_ptr<DebugHub> hub;

  HubFixture(const std::string& workload, Variant variant, std::uint32_t cores,
             std::uint32_t n = 256) {
    WorkloadConfig cfg;
    cfg.n = n;
    cfg.block = 32;
    cfg.cores = cores;
    const auto wl = workload::WorkloadRegistry::instance().at(workload);
    kernel = wl->instantiate(variant, cfg);
    sim::SimParams params;
    params.num_cores = cores;
    cluster = std::make_unique<sim::Cluster>(rvasm::assemble(kernel.source), params);
    kernels::populate_inputs(*cluster, kernel);
    hub = std::make_unique<DebugHub>(*cluster);
  }
};

TEST(DebugHub, BreakpointStopsAtLabelSingleCore) {
  HubFixture f("axpy", Variant::kCopift, 1);
  const std::uint32_t bp = f.cluster->program().symbol("body_begin");
  f.hub->set_breakpoint(bp);
  const Stop stop = f.hub->resume();
  EXPECT_EQ(stop.reason, Stop::Reason::kBreakpoint);
  EXPECT_EQ(stop.hart, 0u);
  EXPECT_EQ(stop.addr, bp);
  EXPECT_EQ(f.hub->pc(0), bp);
  // Stopped-state access: sp is live, GPR writes round-trip.
  EXPECT_NE(f.hub->read_gpr(0, 2), 0u);
  const std::uint32_t t6 = f.hub->read_gpr(0, 31);
  f.hub->write_gpr(0, 31, 0xdeadbeef);
  EXPECT_EQ(f.hub->read_gpr(0, 31), 0xdeadbeefu);
  f.hub->write_gpr(0, 31, t6);
  // Continue to a clean exit once the breakpoint is gone.
  EXPECT_TRUE(f.hub->clear_breakpoint(bp));
  const Stop done = f.hub->resume();
  EXPECT_EQ(done.reason, Stop::Reason::kExited);
  EXPECT_EQ(done.exit_code, 0u);
  EXPECT_NO_THROW(kernels::verify_outputs(*f.cluster, f.kernel));
}

TEST(DebugHub, BreakpointHitsEveryHartAtFourCores) {
  HubFixture f("axpy", Variant::kCopift, 4);
  const std::uint32_t bp = f.cluster->program().symbol("body_begin");
  f.hub->set_breakpoint(bp);
  std::set<unsigned> seen;
  for (int i = 0; i < 64 && seen.size() < 4; ++i) {
    const Stop stop = f.hub->resume();
    ASSERT_EQ(stop.reason, Stop::Reason::kBreakpoint) << "iteration " << i;
    EXPECT_EQ(stop.addr, bp);
    EXPECT_EQ(f.hub->pc(stop.hart), bp);
    seen.insert(stop.hart);
  }
  EXPECT_EQ(seen, (std::set<unsigned>{0, 1, 2, 3}));
  EXPECT_TRUE(f.hub->clear_breakpoint(bp));
  const Stop done = f.hub->resume();
  EXPECT_EQ(done.reason, Stop::Reason::kExited);
  EXPECT_NO_THROW(kernels::verify_outputs(*f.cluster, f.kernel));
}

TEST(DebugHub, SingleStepAdvancesOneInstruction) {
  HubFixture f("axpy", Variant::kBaseline, 1);
  const std::uint32_t bp = f.cluster->program().symbol("body_begin");
  f.hub->set_breakpoint(bp);
  ASSERT_EQ(f.hub->resume().reason, Stop::Reason::kBreakpoint);
  // Step instruction by instruction through the unrolled loop body: the PC
  // must move to the next word each time (straight-line fld/fmadd/fsd code).
  std::uint32_t pc = f.hub->pc(0);
  for (int i = 0; i < 8; ++i) {
    const Stop stop = f.hub->step_instruction(0);
    EXPECT_EQ(stop.reason, Stop::Reason::kStep);
    EXPECT_EQ(f.hub->pc(0), pc + 4) << "step " << i;
    pc = f.hub->pc(0);
  }
}

TEST(DebugHub, StepThenContinueMatchesPlainRunCycles) {
  // Run A: plain. Run B: breakpoint, 10 single steps, a cycle step, then
  // continue. Total cycles must be identical — interactive control is pure
  // observation.
  HubFixture plain("axpy", Variant::kCopift, 4);
  const auto plain_result = plain.cluster->run();
  ASSERT_TRUE(plain_result.halted);

  HubFixture f("axpy", Variant::kCopift, 4);
  const std::uint32_t bp = f.cluster->program().symbol("body_begin");
  f.hub->set_breakpoint(bp);
  ASSERT_EQ(f.hub->resume().reason, Stop::Reason::kBreakpoint);
  for (int i = 0; i < 10; ++i) f.hub->step_instruction(0);
  f.hub->step_cycle();
  f.hub->clear_breakpoint(bp);
  const Stop done = f.hub->resume();
  EXPECT_EQ(done.reason, Stop::Reason::kExited);
  EXPECT_EQ(f.cluster->cycles(), plain_result.cycles);
  EXPECT_EQ(done.exit_code, plain_result.exit_code);
}

TEST(DebugHub, WriteWatchpointFiresOnStore) {
  // Baseline axpy stores results to yarr with plain fsd instructions.
  HubFixture f("axpy", Variant::kBaseline, 1);
  const std::uint32_t yarr = f.cluster->program().symbol("yarr");
  f.hub->set_watchpoint(yarr, 8, WatchKind::kWrite);
  const Stop stop = f.hub->resume();
  EXPECT_EQ(stop.reason, Stop::Reason::kWatchpoint);
  EXPECT_EQ(stop.watch_kind, WatchKind::kWrite);
  EXPECT_GE(stop.addr, yarr);
  EXPECT_LT(stop.addr, yarr + 8);
  EXPECT_TRUE(f.hub->clear_watchpoint(yarr, 8, WatchKind::kWrite));
  EXPECT_EQ(f.hub->resume().reason, Stop::Reason::kExited);
}

TEST(DebugHub, ReadWatchpointFiresOnLoadNotStore) {
  // xarr is input-only in baseline axpy: a read watch fires, and by the time
  // anything touches it the first load must come before any store.
  HubFixture f("axpy", Variant::kBaseline, 1);
  const std::uint32_t xarr = f.cluster->program().symbol("xarr");
  f.hub->set_watchpoint(xarr, 8, WatchKind::kRead);
  const Stop stop = f.hub->resume();
  EXPECT_EQ(stop.reason, Stop::Reason::kWatchpoint);
  EXPECT_EQ(stop.watch_kind, WatchKind::kRead);
  EXPECT_GE(stop.addr, xarr);
  EXPECT_LT(stop.addr, xarr + 8);
}

TEST(DebugHub, WatchpointAtFourCores) {
  HubFixture f("axpy", Variant::kBaseline, 4);
  const std::uint32_t yarr = f.cluster->program().symbol("yarr");
  f.hub->set_watchpoint(yarr, 8, WatchKind::kAccess);
  const Stop stop = f.hub->resume();
  EXPECT_EQ(stop.reason, Stop::Reason::kWatchpoint);
  EXPECT_TRUE(f.hub->clear_watchpoint(yarr, 8, WatchKind::kAccess));
  const Stop done = f.hub->resume();
  EXPECT_EQ(done.reason, Stop::Reason::kExited);
  EXPECT_NO_THROW(kernels::verify_outputs(*f.cluster, f.kernel));
}

TEST(DebugHub, MemoryAccessReadsProgramDataAndText) {
  HubFixture f("axpy", Variant::kCopift, 1);
  const std::uint32_t bp = f.cluster->program().symbol("body_begin");
  f.hub->set_breakpoint(bp);
  ASSERT_EQ(f.hub->resume().reason, Stop::Reason::kBreakpoint);
  // TCDM read/write round trip.
  const std::uint32_t xarr = f.cluster->program().symbol("xarr");
  const auto before = f.hub->read_mem(xarr, 16);
  ASSERT_EQ(before.size(), 16u);
  f.hub->write_mem(xarr, {1, 2, 3, 4});
  const auto after = f.hub->read_mem(xarr, 4);
  EXPECT_EQ(after, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  f.hub->write_mem(xarr, std::vector<std::uint8_t>(before.begin(), before.begin() + 4));
  // Text reads come from the program image (raw instruction encodings).
  const auto insn = f.hub->read_mem(bp, 4);
  const std::uint32_t word = static_cast<std::uint32_t>(insn[0]) | (insn[1] << 8) |
                             (insn[2] << 16) | (static_cast<std::uint32_t>(insn[3]) << 24);
  EXPECT_EQ(word, f.cluster->program().text_words[f.cluster->program().text_index(bp)]);
  // Unmapped addresses throw rather than fabricate bytes.
  EXPECT_THROW((void)f.hub->read_mem(0x4000'0000u, 4), SimError);
}

TEST(DebugHub, SymbolizeNamesTextAddresses) {
  HubFixture f("axpy", Variant::kCopift, 1);
  const rvasm::Program& prog = f.cluster->program();
  const std::uint32_t bp = prog.symbol("body_begin");
  EXPECT_EQ(prog.symbolize(bp), "body_begin");
  EXPECT_EQ(prog.symbolize(bp + 8), "body_begin+0x8");
  const auto near = prog.nearest_label(bp + 4);
  ASSERT_TRUE(near.has_value());
  EXPECT_EQ(near->name, "body_begin");
  EXPECT_EQ(near->offset, 4u);
  EXPECT_FALSE(prog.nearest_label(0x7fff'0000u).has_value());  // outside text
}

// An attached-but-idle hub must leave every registry workload bit-identical
// to a plain run: cycles, every stall column, energy and outputs.
TEST(DebugHub, IdleHubIsBitIdenticalAcrossRegistryWorkloads) {
  for (const auto& name : workload::WorkloadRegistry::instance().names()) {
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    const WorkloadConfig cfg = wl->default_config();
    const auto variants = wl->variants();
    const Variant variant =
        std::find(variants.begin(), variants.end(), Variant::kCopift) != variants.end()
            ? Variant::kCopift
            : Variant::kBaseline;
    const auto kernel = wl->instantiate(variant, cfg);
    sim::SimParams params;
    params.num_cores = cfg.cores;
    const auto program =
        std::make_shared<const rvasm::Program>(rvasm::assemble(kernel.source));

    sim::Cluster plain(program, params);
    kernels::populate_inputs(plain, kernel);
    const auto plain_result = plain.run();

    sim::Cluster debugged(program, params);
    kernels::populate_inputs(debugged, kernel);
    DebugHub hub(debugged);
    const Stop stop = hub.resume();

    ASSERT_EQ(stop.reason, Stop::Reason::kExited) << name;
    EXPECT_EQ(debugged.cycles(), plain_result.cycles) << name;
    EXPECT_EQ(stop.exit_code, plain_result.exit_code) << name;
    // All stall columns: the full counter block must match bit-for-bit.
    EXPECT_EQ(std::memcmp(&debugged.counters(), &plain.counters(),
                          sizeof(sim::ActivityCounters)),
              0)
        << name;
    // Energy is a pure function of the counters, but assert it explicitly.
    const energy::EnergyModel model;
    EXPECT_EQ(model.evaluate(debugged.counters()).total_pj,
              model.evaluate(plain.counters()).total_pj)
        << name;
    EXPECT_NO_THROW(kernels::verify_outputs(debugged, kernel)) << name;
  }
}

// --- socket-level stub session -----------------------------------------------

/// Minimal blocking RSP client over a raw socket, reusing the codec.
class RspTestClient {
 public:
  explicit RspTestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      throw Error("rsp test client connect failed");
    }
  }
  ~RspTestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  std::string cmd(const std::string& payload) {
    const std::string framed = rsp::frame(payload);
    EXPECT_EQ(::send(fd_, framed.data(), framed.size(), 0),
              static_cast<ssize_t>(framed.size()));
    // Expect the stub's '+' ack, then its reply frame; ack the reply.
    while (true) {
      if (auto event = reader_.next()) {
        if (event->kind == rsp::PacketReader::Event::Kind::kPacket) {
          const char plus = '+';
          EXPECT_EQ(::send(fd_, &plus, 1, 0), 1);
          return event->payload;
        }
        continue;  // the ack (or a retransmit artifact)
      }
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) throw Error("stub closed the connection");
      reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  rsp::PacketReader reader_;
};

TEST(GdbStub, EndToEndSessionOverSocket) {
  HubFixture f("axpy", Variant::kCopift, 2);
  GdbStub stub(*f.cluster, StubOptions{0, false});
  const std::uint16_t port = stub.port();
  sim::RunResult result{};
  std::thread server([&] { result = stub.serve(); });

  {
    RspTestClient client(port);
    EXPECT_NE(client.cmd("qSupported:swbreak+").find("PacketSize"), std::string::npos);
    EXPECT_EQ(client.cmd("?").substr(0, 3), "T05");
    EXPECT_EQ(client.cmd("qfThreadInfo"), "m1,2");
    EXPECT_EQ(client.cmd("qsThreadInfo"), "l");

    const std::uint32_t bp = f.cluster->program().symbol("body_begin");
    char zpkt[32];
    std::snprintf(zpkt, sizeof(zpkt), "Z0,%x,4", bp);
    EXPECT_EQ(client.cmd(zpkt), "OK");

    // Both harts hit the breakpoint.
    std::set<std::string> threads;
    for (int i = 0; i < 8 && threads.size() < 2; ++i) {
      const std::string stop = client.cmd("c");
      ASSERT_EQ(stop.substr(0, 3), "T05");
      const auto pos = stop.find("thread:");
      ASSERT_NE(pos, std::string::npos);
      threads.insert(stop.substr(pos + 7, stop.find(';', pos) - pos - 7));
      EXPECT_NE(stop.find("swbreak"), std::string::npos);
    }
    EXPECT_EQ(threads, (std::set<std::string>{"1", "2"}));

    // Register block: 33 u32 + 32 u64 = 776 hex chars; PC slot holds bp.
    const std::string regs = client.cmd("g");
    ASSERT_EQ(regs.size(), 776u);
    EXPECT_EQ(rsp::parse_u32_le(std::string_view(regs).substr(32 * 8, 8)).value(), bp);
    // Single register reads (regnums are hex): p2 = sp, p20 = pc slot's
    // predecessor (a GPR), p21 = ft0, p40 = ft11 (the last FPR).
    EXPECT_NE(client.cmd("p2"), "00000000");
    EXPECT_EQ(client.cmd("pf").size(), 8u);    // a5
    EXPECT_EQ(client.cmd("p20").size(), 8u);   // regnum 0x20 = the PC
    EXPECT_EQ(client.cmd("p21").size(), 16u);  // regnum 0x21 = ft0
    EXPECT_EQ(client.cmd("p40").size(), 16u);  // regnum 0x40 = ft11

    // Memory: read the instruction at the breakpoint.
    char mpkt[32];
    std::snprintf(mpkt, sizeof(mpkt), "m%x,4", bp);
    EXPECT_EQ(client.cmd(mpkt).size(), 8u);

    // Monitor: stall attribution and symbolized where.
    const auto stalls = rsp::from_hex(client.cmd("qRcmd," + rsp::to_hex("stalls")));
    ASSERT_TRUE(stalls.has_value());
    EXPECT_NE(stalls->find("hart 0"), std::string::npos);
    const auto where = rsp::from_hex(client.cmd("qRcmd," + rsp::to_hex("where")));
    ASSERT_TRUE(where.has_value());
    EXPECT_NE(where->find("body_begin"), std::string::npos);

    // Step, clear, continue to exit.
    EXPECT_EQ(client.cmd("s").substr(0, 3), "T05");
    char zclr[32];
    std::snprintf(zclr, sizeof(zclr), "z0,%x,4", bp);
    EXPECT_EQ(client.cmd(zclr), "OK");
    EXPECT_EQ(client.cmd("c"), "W00");
  }

  server.join();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.exit_code, 0u);
  EXPECT_NO_THROW(kernels::verify_outputs(*f.cluster, f.kernel));
}

TEST(GdbStub, DetachFreeRunsToCompletion) {
  HubFixture f("axpy", Variant::kCopift, 1);
  GdbStub stub(*f.cluster, StubOptions{0, false});
  sim::RunResult result{};
  std::thread server([&] { result = stub.serve(); });
  {
    RspTestClient client(stub.port());
    const std::uint32_t bp = f.cluster->program().symbol("body_begin");
    char zpkt[32];
    std::snprintf(zpkt, sizeof(zpkt), "Z0,%x,4", bp);
    EXPECT_EQ(client.cmd(zpkt), "OK");
    EXPECT_EQ(client.cmd("c").substr(0, 3), "T05");
    // Detach mid-run with the breakpoint still set: the stub must drop it
    // and free-run so the driver still gets its result.
    EXPECT_EQ(client.cmd("D"), "OK");
  }
  server.join();
  EXPECT_TRUE(result.halted);
  EXPECT_EQ(result.exit_code, 0u);
  EXPECT_NO_THROW(kernels::verify_outputs(*f.cluster, f.kernel));
}

}  // namespace
}  // namespace copift::debug

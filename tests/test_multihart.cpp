// Multi-hart paper-kernel tests: every one of the six paper kernels must
// partition across the cluster via the HartSlice helper and produce results
// bit-identical to its single-hart reference at any supported core count,
// while cores=1 keeps the historical single-core codegen (no multi-hart
// artifacts, pinned cycle counts — see also test_trace's single-core pins).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "kernels/kernels.hpp"
#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/params.hpp"
#include "workload/hart_slice.hpp"
#include "workload/workload.hpp"

namespace copift::kernels {
namespace {

using workload::Variant;
using workload::WorkloadConfig;

/// Run one kernel configuration to completion and return the cluster.
std::unique_ptr<sim::Cluster> run_kernel_on_cluster(const GeneratedKernel& kernel) {
  sim::SimParams params;
  params.num_cores = kernel.config.cores;
  auto cluster = std::make_unique<sim::Cluster>(rvasm::assemble(kernel.source), params);
  populate_inputs(*cluster, kernel);
  const auto result = cluster->run();
  EXPECT_TRUE(result.halted);
  return cluster;
}

WorkloadConfig test_config(std::uint32_t cores) {
  WorkloadConfig cfg;
  cfg.n = 1920;
  cfg.block = 48;  // divides every per-hart chunk for cores in {1,2,4,8}
  cfg.cores = cores;
  return cfg;
}

TEST(MultiHartKernels, AllSixPaperKernelsAreMultiHartCapable) {
  for (const auto name : kPaperWorkloads) {
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    for (const Variant v : {Variant::kBaseline, Variant::kCopift}) {
      EXPECT_TRUE(wl->multi_hart_capable(v))
          << std::string(name) << "/" << workload::variant_name(v);
    }
  }
}

// The golden verifiers are bit-exact (verify_doubles compares bit patterns,
// the MC verifiers compare exact hit counts), so a passing verification at
// cores=c proves the multi-hart result is bit-identical to the single-hart
// reference.
TEST(MultiHartKernels, BitExactAtEveryCoreCount) {
  for (const auto name : kPaperWorkloads) {
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
      for (const std::uint32_t cores : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(std::string(name) + "/" + workload::variant_name(variant) +
                     " cores=" + std::to_string(cores));
        const auto kernel = wl->instantiate(variant, test_config(cores));
        auto cluster = run_kernel_on_cluster(kernel);
        EXPECT_NO_THROW(verify_outputs(*cluster, kernel));
      }
    }
  }
}

// Stronger than verification for the vector kernels: the output arrays of a
// quad-core run must equal the single-core run's arrays word-for-word.
TEST(MultiHartKernels, VectorOutputsIdenticalToSingleHartWordForWord) {
  for (const auto name : {"exp", "log"}) {
    for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
      SCOPED_TRACE(std::string(name) + "/" + workload::variant_name(variant));
      const auto wl = workload::WorkloadRegistry::instance().at(name);
      auto single = run_kernel_on_cluster(wl->instantiate(variant, test_config(1)));
      auto quad = run_kernel_on_cluster(wl->instantiate(variant, test_config(4)));
      // The data layouts differ (per-hart arena rows), so resolve yarr in
      // each program's own symbol table.
      const std::uint32_t sbase = single->program().symbol("yarr");
      const std::uint32_t qbase = quad->program().symbol("yarr");
      for (std::uint32_t i = 0; i < 1920; ++i) {
        ASSERT_EQ(single->memory().load64(sbase + i * 8),
                  quad->memory().load64(qbase + i * 8))
            << "element " << i;
      }
    }
  }
}

// The Monte Carlo total must be the same integer whether one hart counted
// all samples or eight harts counted disjoint slices of the same PRN
// sequence (per-hart jump-ahead states + exact reduction).
TEST(MultiHartKernels, MonteCarloHitCountsIdenticalAcrossCoreCounts) {
  for (const auto name : {"pi_lcg", "poly_lcg", "pi_xoshiro128p", "poly_xoshiro128p"}) {
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
      SCOPED_TRACE(std::string(name) + "/" + workload::variant_name(variant));
      auto single = run_kernel_on_cluster(wl->instantiate(variant, test_config(1)));
      const std::uint32_t addr = single->program().symbol("result");
      const std::uint64_t want = single->memory().load64(addr);
      for (const std::uint32_t cores : {2u, 8u}) {
        auto multi = run_kernel_on_cluster(wl->instantiate(variant, test_config(cores)));
        EXPECT_EQ(multi->memory().load64(multi->program().symbol("result")), want)
            << "cores=" << cores;
      }
    }
  }
}

// cores=1 must generate exactly the historical single-core program: no
// mhartid reads, no hardware barrier, no per-hart tables. (The byte-level
// guarantee is enforced by the pinned single-core cycle counts in
// test_trace; this catches accidental emission directly.)
TEST(MultiHartKernels, SingleCoreCodegenHasNoMultiHartArtifacts) {
  for (const auto name : kPaperWorkloads) {
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
      SCOPED_TRACE(std::string(name) + "/" + workload::variant_name(variant));
      const auto single = wl->instantiate(variant, test_config(1));
      EXPECT_EQ(single.source.find("mhartid"), std::string::npos);
      EXPECT_EQ(single.source.find("csrr zero, barrier"), std::string::npos);
      EXPECT_EQ(single.source.find("hart_prng"), std::string::npos);
      EXPECT_EQ(single.source.find("partials"), std::string::npos);

      const auto multi = wl->instantiate(variant, test_config(4));
      EXPECT_NE(multi.source.find("mhartid"), std::string::npos);
      EXPECT_NE(multi.source.find("csrr zero, barrier"), std::string::npos);
    }
  }
}

// Pinned multi-hart cycle counts (n=768, block=32, cores=4, COPIFT): the
// shared-TCDM arbitration order is part of the simulated microarchitecture,
// so the allocation-free arbiter (or any future change) must reproduce these
// exactly.
TEST(MultiHartKernels, QuadCoreCycleCountsArePinned) {
  const struct {
    const char* name;
    std::uint64_t cycles;
  } kPinned[] = {
      {"exp", 3010},  {"log", 3461},          {"poly_lcg", 2596},
      {"pi_lcg", 2110}, {"poly_xoshiro128p", 4986}, {"pi_xoshiro128p", 4870},
  };
  for (const auto& [name, pinned] : kPinned) {
    SCOPED_TRACE(name);
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    WorkloadConfig cfg = test_config(4);
    cfg.n = 768;
    cfg.block = 32;
    auto cluster = run_kernel_on_cluster(wl->instantiate(Variant::kCopift, cfg));
    EXPECT_EQ(cluster->cycles(), pinned);
  }
}

// Multi-hart runs must actually scale: more harts, fewer cycles, and every
// hart retires work.
TEST(MultiHartKernels, QuadCoreRunsScaleAndUseEveryHart) {
  for (const auto name : kPaperWorkloads) {
    SCOPED_TRACE(name);
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    auto single = run_kernel_on_cluster(wl->instantiate(Variant::kCopift, test_config(1)));
    auto quad = run_kernel_on_cluster(wl->instantiate(Variant::kCopift, test_config(4)));
    EXPECT_LT(quad->cycles(), single->cycles());
    for (unsigned h = 0; h < 4; ++h) {
      EXPECT_GT(quad->complex(h).counters().retired(), 0u) << "hart " << h;
      // At least the hardware-barrier epilogue (COPIFT kernels also count
      // their per-block copift.barrier instructions here).
      EXPECT_GE(quad->complex(h).counters().barriers, 1u) << "hart " << h;
    }
  }
}

TEST(MultiHartKernels, ValidationRejectsUnsplittableConfigs) {
  const auto expect_config_error = [](const char* name, Variant v, WorkloadConfig cfg,
                                      const char* fragment) {
    try {
      (void)workload::generate(name, v, cfg);
      FAIL() << name << ": expected ConfigError mentioning '" << fragment << "'";
    } catch (const workload::ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  WorkloadConfig cfg = test_config(7);  // does not divide 1920
  expect_config_error("exp", Variant::kCopift, cfg, "does not divide n=1920");
  cfg = test_config(8);
  cfg.block = 96;  // chunk 240 is not a multiple of 96
  expect_config_error("exp", Variant::kCopift, cfg, "per-hart chunk 240");
  cfg = test_config(4);
  cfg.n = 768;
  cfg.block = 96;  // chunk 192 = 2 blocks is fine; 4 cores * 96 * 2 == 768
  EXPECT_NO_THROW((void)workload::generate("exp", Variant::kCopift, cfg));
  cfg.n = 384;  // chunk 96 = 1 block per hart: pipeline needs a prologue
  expect_config_error("exp", Variant::kCopift, cfg, "fewer than 2 blocks per hart");
  // Baseline only needs the per-hart chunk to respect the unroll factor.
  cfg = test_config(8);
  cfg.n = 1928;  // 241 per hart, not a multiple of 8... and 1928/8=241
  expect_config_error("pi_lcg", Variant::kBaseline, cfg, "per-hart chunk 241");
}

// HartSlice itself: the emitters are no-ops single-core and emit the
// documented skeleton multi-core.
TEST(HartSlice, EmittersAreNoOpsSingleCore) {
  WorkloadConfig cfg;
  cfg.n = 64;
  cfg.cores = 1;
  const workload::HartSlice single(cfg);
  EXPECT_FALSE(single.multi());
  EXPECT_EQ(single.chunk(), 64u);
  AsmBuilder b;
  single.read_hartid(b, "t5", "comment");
  single.offset_by_elements(b, "t5", 8, {"a3"}, "t1", "t2");
  single.offset_by_rows(b, "t5", 32, {"t1"}, "t1", "t2");
  single.table_row(b, "t5", "a1", "tbl", 32, "t6");
  single.begin_hart0_only(b, "t5", "skip");
  single.end_hart0_only(b, "skip");
  single.barrier(b);
  EXPECT_EQ(b.str(), "");
  single.epilogue(b);
  EXPECT_EQ(b.str(), "  ecall\n");

  cfg.cores = 4;
  const workload::HartSlice quad(cfg);
  EXPECT_TRUE(quad.multi());
  EXPECT_EQ(quad.chunk(), 16u);
  AsmBuilder m;
  quad.read_hartid(m, "t5");
  quad.offset_by_elements(m, "t5", 8, {"a3", "a4"}, "t1", "t2");
  const std::string text = m.str();
  EXPECT_NE(text.find("csrr t5, mhartid"), std::string::npos);
  EXPECT_NE(text.find("li t1, 128"), std::string::npos);  // 16 elems * 8 bytes
  EXPECT_NE(text.find("mul t2, t5, t1"), std::string::npos);
  EXPECT_NE(text.find("add a4, a4, t2"), std::string::npos);
}

}  // namespace
}  // namespace copift::kernels

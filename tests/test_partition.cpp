#include "core/partition.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"
#include "rvasm/assembler.hpp"

namespace copift::core {
namespace {

Dfg dfg_of(const std::string& body) {
  return Dfg::build(rvasm::assemble(body).text);
}

// The exp kernel body (paper Fig. 1b) without the loop-control increments
// (the paper also omits instructions 24-25 when partitioning).
const char* kExpBody = R"(
  fld fa3, 0(a3)
  fmul.d fa3, fs0, fa3
  fadd.d fa1, fa3, fs1
  fsd fa1, 0(t1)
  lw a0, 0(t1)
  andi a1, a0, 0x1f
  slli a1, a1, 3
  add a1, t0, a1
  lw a2, 0(a1)
  lw a1, 4(a1)
  slli a0, a0, 15
  sw a2, 0(t2)
  add a0, a0, a1
  sw a0, 4(t2)
  fsub.d fa2, fa1, fs1
  fsub.d fa3, fa3, fa2
  fmadd.d fa2, fs2, fa3, fs3
  fld fa0, 0(t2)
  fmadd.d fa4, fs4, fa3, fs5
  fmul.d fa1, fa3, fa3
  fmadd.d fa4, fa2, fa1, fa4
  fmul.d fa4, fa4, fa0
  fsd fa4, 0(a4)
)";

TEST(Partition, ExpKernelGivesThreePhases) {
  const Dfg g = dfg_of(kExpBody);
  const Partition p = partition(g);
  // Paper Fig. 1c: FP Phase 0 -> Int Phase 1 -> FP Phase 2.
  ASSERT_EQ(p.phases.size(), 3u);
  EXPECT_EQ(p.phases[0].domain, Domain::kFp);
  EXPECT_EQ(p.phases[1].domain, Domain::kInt);
  EXPECT_EQ(p.phases[2].domain, Domain::kFp);
  // Phase 1 holds the ten integer instructions.
  EXPECT_EQ(p.phases[1].nodes.size(), 10u);
  // Phase 2 holds at least the final multiply and store (nodes 21, 22)
  // plus the t-buffer load (node 17).
  EXPECT_GE(p.phases[2].nodes.size(), 3u);
}

TEST(Partition, ValidatesPrecedence) {
  const Dfg g = dfg_of(kExpBody);
  const Partition p = partition(g);
  EXPECT_NO_THROW(validate(p, g));
  for (const auto& e : g.edges()) {
    EXPECT_LE(p.phase_of[e.from], p.phase_of[e.to]);
  }
}

TEST(Partition, PureIntegerBodyIsOnePhase) {
  const Partition p = partition(dfg_of("add a0, a1, a2\nsub a3, a0, a1\n"));
  EXPECT_EQ(p.phases.size(), 1u);
  EXPECT_EQ(p.phases[0].domain, Domain::kInt);
  EXPECT_EQ(p.num_cut_edges(), 0u);
}

TEST(Partition, PureFpBodyIsOnePhase) {
  const Partition p = partition(dfg_of("fadd.d fa0, fa1, fa2\nfmul.d fa3, fa0, fa1\n"));
  EXPECT_EQ(p.phases.size(), 1u);
  EXPECT_EQ(p.phases[0].domain, Domain::kFp);
}

TEST(Partition, IndependentThreadsGiveTwoPhasesNoCuts) {
  const Partition p = partition(dfg_of(R"(
  add a0, a1, a2
  fadd.d fa0, fa1, fa2
  sub a3, a0, a1
  fmul.d fa3, fa0, fa1
)"));
  EXPECT_EQ(p.phases.size(), 2u);
  EXPECT_EQ(p.num_cut_edges(), 0u);
}

TEST(Partition, ChainAlternatesPhases) {
  // int -> fp -> int chain through register bridges.
  const Partition p = partition(dfg_of(R"(
  addi a0, x0, 3
  fcvt.d.w fa0, a0
  fmul.d fa1, fa0, fa0
  fcvt.w.d a1, fa1
  addi a2, a1, 1
)"));
  ASSERT_EQ(p.phases.size(), 3u);
  EXPECT_EQ(p.phases[0].domain, Domain::kInt);
  EXPECT_EQ(p.phases[1].domain, Domain::kFp);
  EXPECT_EQ(p.phases[2].domain, Domain::kInt);
  EXPECT_EQ(p.num_cut_edges(), 2u);
}

TEST(Partition, CutEdgesAreCrossPhaseEdges) {
  const Dfg g = dfg_of(kExpBody);
  const Partition p = partition(g);
  for (const auto& e : p.cut_edges) {
    EXPECT_NE(p.phase_of[e.from], p.phase_of[e.to]);
  }
}

TEST(Partition, MixesDomainsNeverWithinPhase) {
  std::mt19937 rng(11);
  // Random straight-line programs: partition must always validate.
  const char* int_ops[] = {"add a0, a1, a2", "addi a3, a0, 1", "xor a1, a2, a3",
                           "slli a2, a0, 2"};
  const char* fp_ops[] = {"fadd.d fa0, fa1, fa2", "fmul.d fa1, fa0, fa0",
                          "fmadd.d fa2, fa0, fa1, fa2"};
  const char* bridge_ops[] = {"fcvt.d.w fa3, a0", "fcvt.w.d a0, fa1", "flt.d a2, fa0, fa1"};
  for (int trial = 0; trial < 50; ++trial) {
    std::string src;
    const unsigned len = 5 + rng() % 15;
    for (unsigned i = 0; i < len; ++i) {
      const unsigned kind = rng() % 3;
      if (kind == 0) src += std::string(int_ops[rng() % 4]) + "\n";
      if (kind == 1) src += std::string(fp_ops[rng() % 3]) + "\n";
      if (kind == 2) src += std::string(bridge_ops[rng() % 3]) + "\n";
    }
    const Dfg g = dfg_of(src);
    const Partition p = partition(g);
    EXPECT_NO_THROW(validate(p, g)) << src;
    // Every node assigned exactly once.
    std::size_t assigned = 0;
    for (const auto& phase : p.phases) assigned += phase.nodes.size();
    EXPECT_EQ(assigned, g.nodes().size());
  }
}

TEST(Partition, DumpShowsPhases) {
  const Dfg g = dfg_of(kExpBody);
  const Partition p = partition(g);
  const std::string dump = p.dump(g);
  EXPECT_NE(dump.find("Phase 0"), std::string::npos);
  EXPECT_NE(dump.find("cut edges"), std::string::npos);
}

}  // namespace
}  // namespace copift::core

// Timing-parameter robustness: functional results must be bit-exact under
// ANY simulator timing configuration — latencies, FIFO depths and bank
// counts may change *when* things happen, never *what* is computed. This is
// the key separation-of-concerns invariant of the timing model, and it
// exercises every interlock (scoreboards, barriers, SSR backpressure,
// store-ordering) under stress.
#include <gtest/gtest.h>

#include "kernels/runner.hpp"

namespace copift::kernels {
namespace {

struct ParamCase {
  const char* name;
  sim::SimParams params;
};

std::vector<ParamCase> param_cases() {
  std::vector<ParamCase> cases;
  {
    ParamCase c{"default", {}};
    cases.push_back(c);
  }
  {
    ParamCase c{"tiny_fifo", {}};
    c.params.offload_fifo_depth = 2;
    cases.push_back(c);
  }
  {
    ParamCase c{"deep_fifo", {}};
    c.params.offload_fifo_depth = 32;
    cases.push_back(c);
  }
  {
    ParamCase c{"slow_fpu", {}};
    c.params.fpu.add = 6;
    c.params.fpu.mul = 6;
    c.params.fpu.fma = 7;
    c.params.fpu.cvt = 5;
    c.params.fpu.cmp = 4;
    cases.push_back(c);
  }
  {
    ParamCase c{"fast_fpu", {}};
    c.params.fpu.add = 1;
    c.params.fpu.mul = 1;
    c.params.fpu.fma = 1;
    c.params.fpu.cvt = 1;
    cases.push_back(c);
  }
  {
    ParamCase c{"few_banks", {}};
    c.params.num_tcdm_banks = 2;
    cases.push_back(c);
  }
  {
    ParamCase c{"slow_loads", {}};
    c.params.load_use_latency = 6;
    c.params.fp_load_latency = 6;
    cases.push_back(c);
  }
  {
    ParamCase c{"slow_mul", {}};
    c.params.mul_latency = 8;
    cases.push_back(c);
  }
  {
    ParamCase c{"tiny_ssr_fifo", {}};
    c.params.ssr_fifo_depth = 1;
    cases.push_back(c);
  }
  {
    ParamCase c{"slow_cfg", {}};
    c.params.ssr_cfg_latency = 40;
    cases.push_back(c);
  }
  {
    ParamCase c{"tiny_l0", {}};
    c.params.l0_lines = 2;
    c.params.l0_branch_penalty = 6;
    cases.push_back(c);
  }
  {
    ParamCase c{"branchy", {}};
    c.params.branch_taken_penalty = 4;
    cases.push_back(c);
  }
  return cases;
}

struct RobustnessCase {
  KernelId id;
  Variant variant;
  std::size_t param_index;
};

class Robustness : public ::testing::TestWithParam<RobustnessCase> {};

TEST_P(Robustness, BitExactUnderAnyTiming) {
  const auto& rc = GetParam();
  const auto pc = param_cases()[rc.param_index];
  KernelConfig cfg;
  cfg.n = 192;
  cfg.block = 48;
  cfg.seed = 77;
  const auto run = run_kernel(generate(rc.id, rc.variant, cfg), pc.params);
  EXPECT_TRUE(run.verified) << pc.name;
  EXPECT_LE(run.ipc(), 2.0) << pc.name;
}

std::vector<RobustnessCase> robustness_cases() {
  std::vector<RobustnessCase> cases;
  const std::size_t num_params = param_cases().size();
  for (const auto id : kAllKernels) {
    for (std::size_t p = 0; p < num_params; ++p) {
      cases.push_back({id, Variant::kCopift, p});
      if (p < 8) cases.push_back({id, Variant::kBaseline, p});
    }
  }
  return cases;
}

std::string robustness_name(const ::testing::TestParamInfo<RobustnessCase>& info) {
  std::string name = kernel_name(info.param.id);
  name += info.param.variant == Variant::kCopift ? "_copift_" : "_base_";
  name += param_cases()[info.param.param_index].name;
  return name;
}

INSTANTIATE_TEST_SUITE_P(TimingSweep, Robustness, ::testing::ValuesIn(robustness_cases()),
                         robustness_name);

TEST(Robustness, TimingChangesCyclesButNotResults) {
  // Sanity that the sweep is meaningful: slow FPU actually slows things.
  KernelConfig cfg;
  cfg.n = 192;
  cfg.block = 48;
  sim::SimParams slow;
  slow.fpu.fma = 8;
  slow.fpu.add = 8;
  slow.fpu.mul = 8;
  const auto fast = run_kernel(generate(KernelId::kExp, Variant::kCopift, cfg));
  const auto slowed = run_kernel(generate(KernelId::kExp, Variant::kCopift, cfg), slow);
  EXPECT_GT(slowed.region.cycles, fast.region.cycles);
}

}  // namespace
}  // namespace copift::kernels

// Differential proof layer for the beyond-TCDM memory hierarchy.
//
// The DRAM backing store + DMA burst path is only legal because it is
// invisible when unused: attaching the timing model must not perturb any
// TCDM-resident simulation by a single cycle or counter, and for workloads
// that do drive DMA traffic into the DRAM window a *neutral* DRAM (zero row
// latency, bandwidth at least the engine's) must reproduce the flat path
// bit-for-bit. These tests pin that equivalence over every registry
// workload at cores=1 and cores=4 with skip-ahead on and off (mirroring
// test_decode_cache.cpp's fidelity matrix), check the closed-form
// DramModel::access scheduler against a naive cycle-walking reference over
// randomized request streams, and exercise the dmwait skip-ahead wakeup
// against real DRAM timing.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "energy/energy.hpp"
#include "kernels/runner.hpp"
#include "mem/dram.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/params.hpp"
#include "workload/workload.hpp"

namespace copift::sim {
namespace {

using workload::Variant;
using workload::WorkloadConfig;

struct SimRun {
  std::unique_ptr<Cluster> cluster;
  RunResult result;
};

SimRun run_kernel_with(const workload::GeneratedWorkload& kernel, const SimParams& base) {
  SimParams params = base;
  params.num_cores = kernel.config.cores;
  SimRun r;
  r.cluster = std::make_unique<Cluster>(rvasm::assemble(kernel.source), params);
  kernels::populate_inputs(*r.cluster, kernel);
  r.result = r.cluster->run();
  return r;
}

SimRun run_source(const std::string& source, const SimParams& params) {
  SimRun r;
  r.cluster = std::make_unique<Cluster>(rvasm::assemble(source), params);
  r.result = r.cluster->run();
  return r;
}

/// DRAM timing that cannot change any schedule: bursts pay no row latency
/// and stream at full engine bandwidth, so the per-cycle byte flow equals
/// the flat (no-DRAM) path exactly. Only the row hit/miss tallies differ.
SimParams neutral_dram_params() {
  SimParams params;
  params.dram_enabled = true;
  params.dram_t_row_hit = 0;
  params.dram_t_row_miss = 0;
  params.dram_bytes_per_cycle = params.dma_bytes_per_cycle;
  return params;
}

/// Every taxonomy-mapped stall column plus the issue/idle aggregates and the
/// DMA counters. The dram_row_* tallies are compared only when requested:
/// a neutral DRAM still *counts* its bursts even though it delays nothing.
void expect_counters_equal(const ActivityCounters& a, const ActivityCounters& b,
                           bool compare_dram_rows) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.int_retired, b.int_retired);
  EXPECT_EQ(a.fp_retired, b.fp_retired);
  EXPECT_EQ(a.frep_replays, b.frep_replays);
  EXPECT_EQ(a.int_offloads, b.int_offloads);
  EXPECT_EQ(a.int_halt_cycles, b.int_halt_cycles);
  EXPECT_EQ(a.fpss_cfg_cycles, b.fpss_cfg_cycles);
  EXPECT_EQ(a.fpss_idle, b.fpss_idle);
  EXPECT_EQ(a.tcdm_reads, b.tcdm_reads);
  EXPECT_EQ(a.tcdm_writes, b.tcdm_writes);
  EXPECT_EQ(a.tcdm_conflicts, b.tcdm_conflicts);
  EXPECT_EQ(a.ssr_elements, b.ssr_elements);
  EXPECT_EQ(a.issr_indices, b.issr_indices);
  EXPECT_EQ(a.l0_hits, b.l0_hits);
  EXPECT_EQ(a.l0_refills, b.l0_refills);
  EXPECT_EQ(a.dma_busy_cycles, b.dma_busy_cycles);
  EXPECT_EQ(a.dma_bytes, b.dma_bytes);
  if (compare_dram_rows) {
    EXPECT_EQ(a.dram_row_hits, b.dram_row_hits);
    EXPECT_EQ(a.dram_row_misses, b.dram_row_misses);
  }
  for (unsigned i = 0; i < kNumStallCauses; ++i) {
    const auto cause = static_cast<StallCause>(i);
    EXPECT_EQ(stall_cause_counter_value(a, cause), stall_cause_counter_value(b, cause))
        << "stall column " << stall_cause_counter_name(cause);
  }
}

void expect_identities(const ActivityCounters& c) {
  EXPECT_EQ(c.int_issue_cycles() + c.int_stall_cycles() + c.int_halt_cycles, c.cycles);
  EXPECT_EQ(c.fpss_issue_cycles() + c.fpss_stall_cycles() + c.fpss_idle, c.cycles);
}

/// A small TCDM-resident config every registry workload accepts (falls back
/// to the workload's defaults where the small shape is rejected).
WorkloadConfig fitting_config(const workload::Workload& wl, Variant variant,
                              std::uint32_t cores) {
  WorkloadConfig cfg;
  cfg.n = 768;
  cfg.block = 32;
  cfg.cores = cores;
  try {
    wl.validate(variant, cfg);
    return cfg;
  } catch (const Error&) {
    cfg = wl.default_config();
    cfg.cores = cores;
    return cfg;
  }
}

// --- whole-workload differential --------------------------------------------

// Every registry workload, every supported variant, cores=1 and cores=4,
// skip-ahead on and off: a present-but-neutral DRAM must be bit-identical to
// no DRAM at all — cycles, every counter and stall column (aggregate and per
// hart), the energy estimate, and the verified memory outputs. Workloads
// whose DMA stream never leaves TCDM are additionally row-tally-identical
// (both zero); exp/log drive their staging stream through the DRAM window,
// so their burst tallies are excluded (a neutral DRAM still counts rows).
TEST(DramDifferential, NeutralDramBitExactForAllWorkloads) {
  const energy::EnergyModel model;
  const auto& registry = workload::WorkloadRegistry::instance();
  for (const auto& name : registry.names()) {
    const auto wl = registry.at(name);
    for (const Variant variant : wl->variants()) {
      for (const std::uint32_t cores : {1u, 4u}) {
        if (cores > 1 && !wl->multi_hart_capable(variant)) continue;
        for (const bool skip_ahead : {true, false}) {
          SCOPED_TRACE(name + "/" + workload::variant_name(variant) +
                       " cores=" + std::to_string(cores) +
                       (skip_ahead ? " skip=on" : " skip=off"));
          const auto cfg = fitting_config(*wl, variant, cores);
          const auto kernel = wl->instantiate(variant, cfg);

          SimParams flat;
          flat.skip_ahead = skip_ahead;
          SimParams neutral = neutral_dram_params();
          neutral.skip_ahead = skip_ahead;

          SimRun without = run_kernel_with(kernel, flat);
          SimRun with = run_kernel_with(kernel, neutral);
          EXPECT_EQ(without.result.cycles, with.result.cycles);
          EXPECT_EQ(without.result.exit_code, with.result.exit_code);
          const bool rows = with.cluster->counters().dram_row_hits == 0 &&
                            with.cluster->counters().dram_row_misses == 0;
          expect_counters_equal(without.cluster->counters(), with.cluster->counters(),
                                /*compare_dram_rows=*/rows);
          for (unsigned h = 0; h < cores; ++h) {
            expect_identities(with.cluster->complex(h).counters());
            expect_counters_equal(without.cluster->complex(h).counters(),
                                  with.cluster->complex(h).counters(),
                                  /*compare_dram_rows=*/rows);
          }
          EXPECT_EQ(model.evaluate(without.cluster->counters()).total_pj,
                    model.evaluate(with.cluster->counters()).total_pj);
          EXPECT_NO_THROW(kernels::verify_outputs(*with.cluster, kernel));
        }
      }
    }
  }
}

// With *real* (non-neutral) DRAM timing the schedule legitimately changes —
// but it must not depend on the clock mode. The DMA-active workloads (exp
// and log stage through the DRAM window even untiled) pin the dmwait/DRAM
// skip-ahead path: skip on == skip off in every column.
TEST(DramDifferential, SkipAheadBitExactUnderRealDramTiming) {
  for (const auto name : {"exp", "log"}) {
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
      for (const std::uint32_t cores : {1u, 4u}) {
        SCOPED_TRACE(std::string(name) + "/" + workload::variant_name(variant) +
                     " cores=" + std::to_string(cores));
        const auto cfg = fitting_config(*wl, variant, cores);
        const auto kernel = wl->instantiate(variant, cfg);
        SimParams slow_params;
        slow_params.dram_enabled = true;
        slow_params.skip_ahead = false;
        SimParams fast_params = slow_params;
        fast_params.skip_ahead = true;
        SimRun slow = run_kernel_with(kernel, slow_params);
        SimRun fast = run_kernel_with(kernel, fast_params);
        EXPECT_EQ(slow.result.cycles, fast.result.cycles);
        EXPECT_EQ(slow.cluster->skip_jumps(), 0u);
        expect_counters_equal(slow.cluster->counters(), fast.cluster->counters(),
                              /*compare_dram_rows=*/true);
        for (unsigned h = 0; h < cores; ++h) {
          expect_identities(fast.cluster->complex(h).counters());
          expect_counters_equal(slow.cluster->complex(h).counters(),
                                fast.cluster->complex(h).counters(),
                                /*compare_dram_rows=*/true);
        }
        EXPECT_NO_THROW(kernels::verify_outputs(*fast.cluster, kernel));
      }
    }
  }
}

// --- randomized property test: closed-form scheduler vs naive reference -----

// The reference transcribes the documented semantics with no scheduling
// cleverness: walk the clock forward one cycle at a time until the request
// can issue (its channel is free and fewer than max_inflight previously
// issued requests are still incomplete), then pay the row latency and
// stream the bytes. DramModel::access computes the same schedule in closed
// form with a min-heap; the two must agree on every start/done/row_hit.
struct NaiveDram {
  explicit NaiveDram(const mem::DramTiming& t)
      : timing(t), open_row(t.channels, kNoRow), busy_until(t.channels, 0) {}

  struct Result {
    std::uint64_t start = 0;
    std::uint64_t done = 0;
    bool row_hit = false;
  };

  Result request(std::uint64_t now, std::uint32_t addr, std::uint32_t bytes) {
    const unsigned c = static_cast<unsigned>((addr / timing.row_bytes) % timing.channels);
    std::uint64_t t = now;
    for (;;) {
      unsigned outstanding = 0;
      for (const std::uint64_t done : issued_done) {
        if (done > t) ++outstanding;
      }
      if (outstanding < timing.max_inflight && t >= busy_until[c]) break;
      ++t;
    }
    Result r;
    r.start = t;
    const std::uint64_t row = addr / timing.row_bytes;
    r.row_hit = open_row[c] == row;
    open_row[c] = row;
    if (r.row_hit) ++hits; else ++misses;
    const unsigned latency = r.row_hit ? timing.t_row_hit : timing.t_row_miss;
    const std::uint64_t beats =
        (static_cast<std::uint64_t>(bytes) + timing.bytes_per_cycle - 1) /
        timing.bytes_per_cycle;
    r.done = r.start + latency + beats;
    busy_until[c] = r.done;
    issued_done.push_back(r.done);
    return r;
  }

  static constexpr std::uint64_t kNoRow = ~std::uint64_t{0};
  mem::DramTiming timing;
  std::vector<std::uint64_t> open_row;
  std::vector<std::uint64_t> busy_until;
  std::vector<std::uint64_t> issued_done;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

TEST(DramModelProperty, ClosedFormMatchesNaiveReferenceOnRandomStreams) {
  std::mt19937 rng(0xC0F1F7u);
  const std::vector<mem::DramTiming> configs = {
      {},                                                        // defaults
      {.t_row_hit = 1, .t_row_miss = 9, .row_bytes = 512,
       .bytes_per_cycle = 16, .channels = 1, .max_inflight = 1},
      {.t_row_hit = 2, .t_row_miss = 40, .row_bytes = 4096,
       .bytes_per_cycle = 64, .channels = 4, .max_inflight = 2},
      {.t_row_hit = 0, .t_row_miss = 0, .row_bytes = 1024,
       .bytes_per_cycle = 8, .channels = 2, .max_inflight = 16},
  };
  for (std::size_t ci = 0; ci < configs.size(); ++ci) {
    const auto& timing = configs[ci];
    for (unsigned trial = 0; trial < 8; ++trial) {
      SCOPED_TRACE("config " + std::to_string(ci) + " trial " + std::to_string(trial));
      mem::DramModel model(timing);
      NaiveDram naive(timing);
      // Mix of access shapes: dense sequential runs (row-hit friendly),
      // random scatter (row-miss heavy) and strided walks, at randomized
      // nondecreasing arrival times (including same-cycle batches).
      std::uint64_t now = 0;
      std::uint32_t seq_addr = rng() % (1u << 20);
      for (unsigned req = 0; req < 200; ++req) {
        now += rng() % 3 == 0 ? 0 : rng() % 50;
        std::uint32_t addr;
        switch (rng() % 3) {
          case 0: addr = seq_addr; seq_addr += 256; break;
          case 1: addr = rng() % (1u << 20); break;
          default: addr = (req % 16) * timing.row_bytes + (rng() % timing.row_bytes); break;
        }
        const std::uint32_t bytes = 1 + rng() % 4096;
        const auto fast = model.access(now, addr, bytes);
        const auto ref = naive.request(now, addr, bytes);
        ASSERT_EQ(ref.start, fast.start) << "request " << req;
        ASSERT_EQ(ref.done, fast.done) << "request " << req;
        ASSERT_EQ(ref.row_hit, fast.row_hit) << "request " << req;
      }
      EXPECT_EQ(naive.hits, model.row_hits());
      EXPECT_EQ(naive.misses, model.row_misses());
    }
  }
}

// --- dmwait skip-ahead wakeup -----------------------------------------------

// A dmwait on a DRAM-window transfer is a provable sleep whose lower bound
// the probe learns from the DMA drain estimate: the fast loop must jump,
// land on the exact wake cycle, and attribute the wait to the DRAM cause.
TEST(DramSkipAhead, DmwaitOnDramTransferJumpsExactly) {
  const std::string source = R"(
.data
buf:  .space 4096
.section .dram
din:  .space 4096
.text
  la a0, din
  dmsrc a0
  la a1, buf
  dmdst a1
  li a2, 4096
  dmcpy a3, a2
  dmwait
  ecall
)";
  SimParams slow_params;
  slow_params.dram_enabled = true;
  slow_params.skip_ahead = false;
  SimParams fast_params = slow_params;
  fast_params.skip_ahead = true;
  SimRun slow = run_source(source, slow_params);
  SimRun fast = run_source(source, fast_params);
  EXPECT_EQ(fast.result.cycles, slow.result.cycles);
  expect_counters_equal(slow.cluster->counters(), fast.cluster->counters(),
                        /*compare_dram_rows=*/true);
  expect_identities(fast.cluster->counters());
  EXPECT_GT(fast.cluster->skip_jumps(), 0u);
  EXPECT_GT(fast.cluster->counters().stall_dma_dram, 0u);
  EXPECT_EQ(fast.cluster->counters().stall_dma_wait, 0u);
  EXPECT_EQ(fast.cluster->dma().bytes_moved(), 4096u);
  // 4 KiB streamed DRAM -> TCDM in 256-byte bursts over two 2 KiB rows: one
  // miss opens each row, the remaining bursts of the row hit.
  EXPECT_GT(fast.cluster->counters().dram_row_hits, 0u);
  EXPECT_GT(fast.cluster->counters().dram_row_misses, 0u);
}

// The same wait on a TCDM-local copy attributes to the plain DMA cause even
// with the DRAM level attached — the taxonomy split is by traffic, not by
// whether the model is present.
TEST(DramSkipAhead, DmwaitOnTcdmTransferStaysLocalCause) {
  const std::string source = R"(
.data
src: .space 2048
dst: .space 2048
.text
  la a0, src
  dmsrc a0
  la a1, dst
  dmdst a1
  li a2, 2048
  dmcpy a3, a2
  dmwait
  ecall
)";
  SimParams params;
  params.dram_enabled = true;
  SimRun run = run_source(source, params);
  expect_identities(run.cluster->counters());
  EXPECT_GT(run.cluster->counters().stall_dma_wait, 0u);
  EXPECT_EQ(run.cluster->counters().stall_dma_dram, 0u);
  EXPECT_EQ(run.cluster->counters().dram_row_hits, 0u);
  EXPECT_EQ(run.cluster->counters().dram_row_misses, 0u);
  EXPECT_EQ(run.cluster->dma().bytes_moved(), 2048u);
}

}  // namespace
}  // namespace copift::sim

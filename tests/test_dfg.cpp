#include "core/dfg.hpp"

#include <gtest/gtest.h>

#include "rvasm/assembler.hpp"

namespace copift::core {
namespace {

/// Assemble a body and build its DFG.
Dfg dfg_of(const std::string& body) {
  const auto program = rvasm::assemble(body);
  return Dfg::build(program.text);
}

/// The paper's Fig. 1b loop body (one element of the exp kernel).
const char* kFig1b = R"(
  fld fa3, 0(a3)
  fmul.d fa3, fs0, fa3
  fadd.d fa1, fa3, fs1
  fsd fa1, 0(t1)
  lw a0, 0(t1)
  andi a1, a0, 0x1f
  slli a1, a1, 3
  add a1, t0, a1
  lw a2, 0(a1)
  lw a1, 4(a1)
  slli a0, a0, 15
  sw a2, 0(t2)
  add a0, a0, a1
  sw a0, 4(t2)
  fsub.d fa2, fa1, fs1
  fsub.d fa3, fa3, fa2
  fmadd.d fa2, fs2, fa3, fs3
  fld fa0, 0(t2)
  fmadd.d fa4, fs4, fa3, fs5
  fmul.d fa1, fa3, fa3
  fmadd.d fa4, fa2, fa1, fa4
  fmul.d fa4, fa4, fa0
  fsd fa4, 0(a4)
)";

TEST(Dfg, DomainsMatchPaperSplit) {
  const Dfg g = dfg_of(kFig1b);
  ASSERT_EQ(g.nodes().size(), 23u);
  EXPECT_EQ(g.num_fp_nodes(), 13u);   // paper: 13 FP instructions
  EXPECT_EQ(g.num_int_nodes(), 10u);  // paper: 10 integer instructions
}

TEST(Dfg, RegisterFlowEdges) {
  const Dfg g = dfg_of("addi a0, x0, 1\naddi a1, a0, 2\nadd a2, a0, a1\n");
  // a1's producer is node 0; a2 consumes nodes 0 and 1.
  EXPECT_EQ(g.preds(1), std::vector<std::size_t>{0});
  const auto p2 = g.preds(2);
  EXPECT_EQ(p2.size(), 2u);
  EXPECT_EQ(g.succs(0).size(), 2u);
}

TEST(Dfg, X0NeverCreatesDependency) {
  const Dfg g = dfg_of("add x0, a0, a0\nadd a1, x0, x0\n");
  EXPECT_TRUE(g.preds(1).empty());
}

TEST(Dfg, MemoryDependencyStoreToLoad) {
  const Dfg g = dfg_of("sw a1, 0(a0)\nlw a2, 0(a0)\n");
  const auto preds = g.preds(1);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], 0u);
}

TEST(Dfg, NonOverlappingOffsetsDoNotAlias) {
  const Dfg g = dfg_of("sw a1, 0(a0)\nlw a2, 8(a0)\n");
  EXPECT_TRUE(g.preds(1).empty());
}

TEST(Dfg, DifferentBaseRegistersAssumedNoAlias) {
  const Dfg g = dfg_of("sw a1, 0(a0)\nlw a2, 0(a3)\n");
  EXPECT_TRUE(g.preds(1).empty());
}

TEST(Dfg, BaseVersioningDistinguishesRedefinedPointers) {
  // After a0 is redefined, old stores through a0 must not alias.
  const Dfg g = dfg_of("sw a1, 0(a0)\naddi a0, a0, 64\nlw a2, 0(a0)\n");
  const auto preds = g.preds(2);
  // Only the register dependency on the addi, no memory edge.
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], 1u);
}

TEST(Dfg, Type2StaticMemoryDependency) {
  // FP store at a static address feeding an integer load: paper Type 2
  // (exp kernel edge 4 -> 5).
  const Dfg g = dfg_of("fsd fa1, 0(t1)\nlw a0, 0(t1)\n");
  const auto cross = g.cross_edges();
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].kind, DepKind::kMemory);
  EXPECT_EQ(cross[0].cross, CrossDepType::kType2);
}

TEST(Dfg, Type1DynamicAddressDependency) {
  // Integer-computed address feeding an FP load: paper Type 1
  // (the logf table lookup).
  const Dfg g = dfg_of("add a1, t0, a2\nfld fa0, 0(a1)\n");
  const auto cross = g.cross_edges();
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].cross, CrossDepType::kType1);
}

TEST(Dfg, Type3RegisterDependency) {
  // fcvt.d.w consumes an integer register: paper Type 3.
  const Dfg g = dfg_of("addi a0, x0, 7\nfcvt.d.w fa0, a0\n");
  auto cross = g.cross_edges();
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].cross, CrossDepType::kType3);
  // flt.d producing an integer result is also Type 3 (a0 is read twice, so
  // two edges exist — both classified Type 3).
  const Dfg g2 = dfg_of("flt.d a0, fa0, fa1\nadd a1, a0, a0\n");
  cross = g2.cross_edges();
  ASSERT_EQ(cross.size(), 2u);
  EXPECT_EQ(cross[0].cross, CrossDepType::kType3);
  EXPECT_EQ(cross[1].cross, CrossDepType::kType3);
}

TEST(Dfg, Fig1bCrossEdgeClassification) {
  const Dfg g = dfg_of(kFig1b);
  unsigned type1 = 0;
  unsigned type2 = 0;
  unsigned type3 = 0;
  for (const auto& e : g.cross_edges()) {
    if (e.cross == CrossDepType::kType1) ++type1;
    if (e.cross == CrossDepType::kType2) ++type2;
    if (e.cross == CrossDepType::kType3) ++type3;
  }
  // Paper Fig. 1c: the marked cross edges (kd spill 4->5, t buffer
  // 12->18 and 14->18) are static memory dependencies.
  EXPECT_EQ(type2, 3u);
  EXPECT_EQ(type3, 0u);  // exp has no register bridges
  EXPECT_EQ(type1, 0u);
}

TEST(Dfg, DumpMentionsEveryNode) {
  const Dfg g = dfg_of("addi a0, x0, 1\nfcvt.d.w fa0, a0\n");
  const std::string dump = g.dump();
  EXPECT_NE(dump.find("addi"), std::string::npos);
  EXPECT_NE(dump.find("fcvt.d.w"), std::string::npos);
  EXPECT_NE(dump.find("T3"), std::string::npos);
}

TEST(Dfg, XcopiftInstructionsAreFpDomain) {
  isa::Instr instr;
  instr.mnemonic = isa::Mnemonic::kFltDCop;
  EXPECT_EQ(domain_of(instr), Domain::kFp);
  instr.mnemonic = isa::Mnemonic::kFrepO;
  EXPECT_EQ(domain_of(instr), Domain::kInt);
}

}  // namespace
}  // namespace copift::core

#include "fpu/fpu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <random>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "fpu/fp_rf.hpp"

namespace copift::fpu {
namespace {

using isa::Instr;
using isa::Mnemonic;

std::uint64_t rd(double v) { return copift::bit_cast<std::uint64_t>(v); }
double dr(std::uint64_t v) { return copift::bit_cast<double>(v); }

FpuResult exec(Mnemonic m, double a, double b = 0, double c = 0, std::uint32_t intop = 0) {
  Instr instr;
  instr.mnemonic = m;
  return execute(instr, rd(a), rd(b), rd(c), intop);
}

TEST(Fpu, DoubleArithmetic) {
  EXPECT_EQ(dr(exec(Mnemonic::kFaddD, 1.5, 2.25).fp), 3.75);
  EXPECT_EQ(dr(exec(Mnemonic::kFsubD, 1.5, 2.25).fp), -0.75);
  EXPECT_EQ(dr(exec(Mnemonic::kFmulD, 1.5, 2.0).fp), 3.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFdivD, 3.0, 2.0).fp), 1.5);
  EXPECT_EQ(dr(exec(Mnemonic::kFsqrtD, 9.0).fp), 3.0);
}

TEST(Fpu, FusedMultiplyAddVariants) {
  EXPECT_EQ(dr(exec(Mnemonic::kFmaddD, 2.0, 3.0, 1.0).fp), 7.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFmsubD, 2.0, 3.0, 1.0).fp), 5.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFnmsubD, 2.0, 3.0, 1.0).fp), -5.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFnmaddD, 2.0, 3.0, 1.0).fp), -7.0);
}

TEST(Fpu, FmaIsFused) {
  // Pick operands where fused and unfused rounding differ.
  const double a = 1.0 + 0x1p-52;
  const double b = 1.0 + 0x1p-52;
  const double c = -1.0;
  EXPECT_EQ(dr(exec(Mnemonic::kFmaddD, a, b, c).fp), std::fma(a, b, c));
}

TEST(Fpu, Comparisons) {
  EXPECT_EQ(exec(Mnemonic::kFltD, 1.0, 2.0).intval, 1u);
  EXPECT_EQ(exec(Mnemonic::kFltD, 2.0, 1.0).intval, 0u);
  EXPECT_EQ(exec(Mnemonic::kFleD, 2.0, 2.0).intval, 1u);
  EXPECT_EQ(exec(Mnemonic::kFeqD, 2.0, 2.0).intval, 1u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(exec(Mnemonic::kFltD, nan, 1.0).intval, 0u);
  EXPECT_EQ(exec(Mnemonic::kFeqD, nan, nan).intval, 0u);
  EXPECT_TRUE(exec(Mnemonic::kFltD, 1.0, 2.0).writes_int);
}

TEST(Fpu, SignInjection) {
  EXPECT_EQ(dr(exec(Mnemonic::kFsgnjD, 1.5, -2.0).fp), -1.5);
  EXPECT_EQ(dr(exec(Mnemonic::kFsgnjnD, 1.5, -2.0).fp), 1.5);
  EXPECT_EQ(dr(exec(Mnemonic::kFsgnjxD, -1.5, -2.0).fp), 1.5);
}

TEST(Fpu, ConversionsWithRounding) {
  EXPECT_EQ(exec(Mnemonic::kFcvtWD, 2.5).intval, 2u);   // RNE: ties to even
  EXPECT_EQ(exec(Mnemonic::kFcvtWD, 3.5).intval, 4u);
  EXPECT_EQ(exec(Mnemonic::kFcvtWD, -2.5).intval, static_cast<std::uint32_t>(-2));
  EXPECT_EQ(exec(Mnemonic::kFcvtWuD, 3.7).intval, 4u);
}

TEST(Fpu, ConversionSaturation) {
  EXPECT_EQ(exec(Mnemonic::kFcvtWD, 1e20).intval,
            static_cast<std::uint32_t>(std::numeric_limits<std::int32_t>::max()));
  EXPECT_EQ(exec(Mnemonic::kFcvtWD, -1e20).intval,
            static_cast<std::uint32_t>(std::numeric_limits<std::int32_t>::min()));
  EXPECT_EQ(exec(Mnemonic::kFcvtWuD, -1.0).intval, 0u);
  EXPECT_EQ(exec(Mnemonic::kFcvtWuD, 1e20).intval, 0xFFFFFFFFu);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(exec(Mnemonic::kFcvtWD, nan).intval,
            static_cast<std::uint32_t>(std::numeric_limits<std::int32_t>::max()));
}

TEST(Fpu, IntToDouble) {
  EXPECT_EQ(dr(exec(Mnemonic::kFcvtDW, 0, 0, 0, static_cast<std::uint32_t>(-5)).fp), -5.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFcvtDWu, 0, 0, 0, 0xFFFFFFFFu).fp), 4294967295.0);
}

TEST(Fpu, FclassCases) {
  EXPECT_EQ(fclass_d(-std::numeric_limits<double>::infinity()), 1u << 0);
  EXPECT_EQ(fclass_d(-1.0), 1u << 1);
  EXPECT_EQ(fclass_d(-0.0), 1u << 3);
  EXPECT_EQ(fclass_d(0.0), 1u << 4);
  EXPECT_EQ(fclass_d(1.0), 1u << 6);
  EXPECT_EQ(fclass_d(std::numeric_limits<double>::infinity()), 1u << 7);
  EXPECT_EQ(fclass_d(std::numeric_limits<double>::quiet_NaN()), 1u << 9);
  EXPECT_EQ(fclass_d(5e-324), 1u << 5);   // positive subnormal
  EXPECT_EQ(fclass_d(-5e-324), 1u << 2);  // negative subnormal
}

TEST(Fpu, SinglePrecisionNanBoxing) {
  Instr instr;
  instr.mnemonic = Mnemonic::kFaddS;
  const std::uint64_t a = 0xFFFFFFFF00000000ull | copift::bit_cast<std::uint32_t>(1.5f);
  const std::uint64_t b = 0xFFFFFFFF00000000ull | copift::bit_cast<std::uint32_t>(2.0f);
  const FpuResult r = execute(instr, a, b, 0, 0);
  EXPECT_EQ(r.fp >> 32, 0xFFFFFFFFull);  // result is NaN-boxed
  EXPECT_EQ(copift::bit_cast<float>(static_cast<std::uint32_t>(r.fp)), 3.5f);
}

TEST(Fpu, XcopiftConversionsUseFpBits) {
  // fcvt.d.w.cop reads the int32 bit pattern from the FP register low word.
  Instr instr;
  instr.mnemonic = Mnemonic::kFcvtDWCop;
  const std::uint64_t raw = 0xDEADBEEF00000000ull | static_cast<std::uint32_t>(-123);
  EXPECT_EQ(dr(execute(instr, raw, 0, 0, 0).fp), -123.0);
  instr.mnemonic = Mnemonic::kFcvtDWuCop;
  EXPECT_EQ(dr(execute(instr, 0xFFFFFFFFull, 0, 0, 0).fp), 4294967295.0);
}

TEST(Fpu, XcopiftComparisonsProduceDoubles) {
  // flt.d.cop produces 0.0/1.0 in the FP RF so hits accumulate with fadd.d.
  EXPECT_EQ(dr(exec(Mnemonic::kFltDCop, 1.0, 2.0).fp), 1.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFltDCop, 2.0, 1.0).fp), 0.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFeqDCop, 2.0, 2.0).fp), 1.0);
  EXPECT_EQ(dr(exec(Mnemonic::kFleDCop, 2.0, 2.0).fp), 1.0);
  EXPECT_TRUE(exec(Mnemonic::kFltDCop, 1.0, 2.0).writes_fp);
  EXPECT_FALSE(exec(Mnemonic::kFltDCop, 1.0, 2.0).writes_int);
}

TEST(Fpu, XcopiftToIntBitsStayInFpRf) {
  Instr instr;
  instr.mnemonic = Mnemonic::kFcvtWDCop;
  const FpuResult r = execute(instr, rd(-7.2), 0, 0, 0);
  EXPECT_TRUE(r.writes_fp);
  EXPECT_EQ(static_cast<std::int32_t>(static_cast<std::uint32_t>(r.fp)), -7);
}

TEST(Fpu, NonFpuInstructionThrows) {
  Instr instr;
  instr.mnemonic = Mnemonic::kAdd;
  EXPECT_THROW(execute(instr, 0, 0, 0, 0), SimError);
}

TEST(Fpu, LatencyTable) {
  FpuLatencies lat;
  EXPECT_EQ(lat.of(isa::FpuClass::kAdd), lat.add);
  EXPECT_EQ(lat.of(isa::FpuClass::kFma), lat.fma);
  EXPECT_EQ(lat.of(isa::FpuClass::kDivSqrt), lat.div_sqrt);
  EXPECT_GT(lat.div_sqrt, lat.fma);  // iterative unit is slower
}

TEST(FpRegFile, ReadWriteAndNanBox) {
  FpRegFile rf;
  rf.write_d(3, -2.5);
  EXPECT_EQ(rf.read_d(3), -2.5);
  rf.write_s(4, 1.25f);
  EXPECT_EQ(rf.read_s(4), 1.25f);
  EXPECT_EQ(rf.read(4) >> 32, 0xFFFFFFFFull);
}

TEST(Fpu, RandomizedAgainstHost) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(-1e3, 1e3);
  for (int i = 0; i < 500; ++i) {
    const double a = dist(rng);
    const double b = dist(rng);
    const double c = dist(rng);
    EXPECT_EQ(dr(exec(Mnemonic::kFaddD, a, b).fp), a + b);
    EXPECT_EQ(dr(exec(Mnemonic::kFmulD, a, b).fp), a * b);
    EXPECT_EQ(dr(exec(Mnemonic::kFmaddD, a, b, c).fp), std::fma(a, b, c));
    EXPECT_EQ(exec(Mnemonic::kFltD, a, b).intval, a < b ? 1u : 0u);
  }
}

}  // namespace
}  // namespace copift::fpu

// rvlint tests: one broken and one clean program per rule (asserting the
// exact rule id, PC, hart and nearest label), the registry-wide zero-diag
// sweep over workloads x variants x cores x tiling, the observation-only
// guarantee (linting never perturbs simulation results), and strict-mode
// error propagation through the assemble_kernel pipeline hook.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "kernels/runner.hpp"
#include "lint/lint.hpp"
#include "rvasm/assembler.hpp"
#include "workload/workload.hpp"

namespace copift::lint {
namespace {

/// Restores the process-wide pipeline lint mode on scope exit so tests that
/// flip it cannot leak into later tests (or the other way round).
class ModeGuard {
 public:
  explicit ModeGuard(Mode mode) : saved_(pipeline_mode()) { set_pipeline_mode(mode); }
  ~ModeGuard() { set_pipeline_mode(saved_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  Mode saved_;
};

/// Asserts the report has exactly one diagnostic and returns it (by value:
/// the report is usually a temporary).
LintDiag single_diag(const LintReport& report) {
  EXPECT_EQ(report.diags.size(), 1u) << report.summary();
  return report.diags.empty() ? LintDiag{} : report.diags.front();
}

// --- one broken + one clean program per rule --------------------------------

TEST(LintRules, UseBeforeDef) {
  const auto report = lint_source(
      "_start:\n"
      "  add a0, a1, a2\n"
      "  ecall\n");
  ASSERT_EQ(report.diags.size(), 2u) << report.summary();  // a1 and a2
  for (const auto& d : report.diags) {
    EXPECT_EQ(d.rule, Rule::kUseBeforeDef);
    EXPECT_EQ(d.pc, 0x1000u);
    EXPECT_EQ(d.hart, 0u);
    EXPECT_EQ(d.label, "_start");
  }
  EXPECT_NE(report.diags[0].message.find("a1"), std::string::npos);
  EXPECT_NE(report.diags[1].message.find("a2"), std::string::npos);

  EXPECT_TRUE(lint_source(
                  "_start:\n"
                  "  li a1, 1\n"
                  "  li a2, 2\n"
                  "  add a0, a1, a2\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, OobAccess) {
  const auto d = single_diag(lint_source(
      "_start:\n"
      "  li a0, 0x20000000\n"
      "  lw a1, 0(a0)\n"
      "  ecall\n"));
  EXPECT_EQ(d.rule, Rule::kOobAccess);
  EXPECT_EQ(d.pc, 0x1004u);
  EXPECT_EQ(d.hart, 0u);
  EXPECT_EQ(d.label, "_start+0x4");
  EXPECT_NE(d.message.find("0x20000000"), std::string::npos);

  EXPECT_TRUE(lint_source(
                  "_start:\n"
                  "  li a0, 0x10000000\n"  // TCDM base: in bounds
                  "  lw a1, 0(a0)\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, SsrReadBeforeConfig) {
  const auto d = single_diag(lint_source(
      "_start:\n"
      "  csrsi ssr, 1\n"
      "  fadd.d ft3, ft0, ft0\n"
      "  csrci ssr, 1\n"
      "  ecall\n"));
  EXPECT_EQ(d.rule, Rule::kSsrReadBeforeConfig);
  EXPECT_EQ(d.pc, 0x1004u);
  EXPECT_EQ(d.hart, 0u);
  EXPECT_EQ(d.label, "_start+0x4");
  EXPECT_NE(d.message.find("lane 0"), std::string::npos);

  // Arming lane 0 first (rptr write = one streamed element) makes the same
  // read legal.
  EXPECT_TRUE(lint_source(
                  ".data\n"
                  "  .align 3\n"
                  "buf:\n"
                  "  .space 64\n"
                  ".text\n"
                  "_start:\n"
                  "  la a0, buf\n"
                  "  scfgwi a0, 24\n"
                  "  csrsi ssr, 1\n"
                  "  fmv.d ft4, ft0\n"
                  "  csrci ssr, 1\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, SsrReconfigWhileStreaming) {
  // bound0=31 arms 32 elements; one fmv.d pops 1, so the geometry rewrite
  // happens with 30 elements provably still in flight (30 not 31: the first
  // element is consumed at arm time by the stream prefetch abstraction).
  const auto d = single_diag(lint_source(
      ".data\n"
      "  .align 3\n"
      "buf:\n"
      "  .space 256\n"
      ".text\n"
      "_start:\n"
      "  csrsi ssr, 1\n"
      "  li t0, 31\n"
      "  scfgwi t0, 1\n"
      "  li t0, 8\n"
      "  scfgwi t0, 5\n"
      "  la a0, buf\n"
      "  scfgwi a0, 24\n"
      "  fmv.d ft4, ft0\n"
      "  li t0, 15\n"
      "  scfgwi t0, 1\n"
      "  csrci ssr, 1\n"
      "  ecall\n"));
  EXPECT_EQ(d.rule, Rule::kSsrReconfigWhileStreaming);
  EXPECT_EQ(d.pc, 0x1028u);
  EXPECT_EQ(d.hart, 0u);
  EXPECT_EQ(d.label, "_start+0x28");
  EXPECT_NE(d.message.find("30 elements"), std::string::npos);

  // Draining the stream first (arm exactly one element, pop it) makes the
  // rewrite legal.
  EXPECT_TRUE(lint_source(
                  ".data\n"
                  "  .align 3\n"
                  "buf:\n"
                  "  .space 64\n"
                  ".text\n"
                  "_start:\n"
                  "  csrsi ssr, 1\n"
                  "  la a0, buf\n"
                  "  scfgwi a0, 24\n"
                  "  fmv.d ft4, ft0\n"
                  "  li t0, 15\n"
                  "  scfgwi t0, 1\n"
                  "  csrci ssr, 1\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, FrepBodyNonFp) {
  const auto d = single_diag(lint_source(
      "_start:\n"
      "  li t0, 3\n"
      "  fcvt.d.w ft3, t0\n"
      "  frep.o t0, 2\n"
      "  fadd.d ft3, ft3, ft3\n"
      "  addi t1, t0, 1\n"
      "  ecall\n"));
  EXPECT_EQ(d.rule, Rule::kFrepBodyNonFp);
  EXPECT_EQ(d.pc, 0x1010u);
  EXPECT_EQ(d.hart, kAnyHart);
  EXPECT_EQ(d.label, "_start+0x10");
  EXPECT_NE(d.message.find("addi"), std::string::npos);

  EXPECT_TRUE(lint_source(
                  "_start:\n"
                  "  li t0, 3\n"
                  "  fcvt.d.w ft3, t0\n"
                  "  frep.o t0, 2\n"
                  "  fadd.d ft3, ft3, ft3\n"
                  "  fmul.d ft4, ft3, ft3\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, FrepBranchIntoBody) {
  const auto report = lint_source(
      "_start:\n"
      "  li t0, 3\n"
      "  fcvt.d.w ft3, t0\n"
      "  j inside\n"
      "  frep.o t0, 2\n"
      "  fadd.d ft3, ft3, ft3\n"
      "inside:\n"
      "  fmul.d ft3, ft3, ft3\n"
      "  ecall\n");
  // The unconditional jump both enters the frep body from outside and makes
  // the frep itself unreachable — two distinct defects, two diagnostics.
  ASSERT_EQ(report.diags.size(), 2u) << report.summary();
  EXPECT_EQ(report.diags[0].rule, Rule::kFrepBranchIntoBody);
  EXPECT_EQ(report.diags[0].pc, 0x1008u);
  EXPECT_EQ(report.diags[0].hart, kAnyHart);
  EXPECT_EQ(report.diags[0].label, "_start+0x8");
  EXPECT_EQ(report.diags[1].rule, Rule::kUnreachableCode);

  // A branch whose target lies *after* the body (with the frep reachable via
  // an unknown-condition fallthrough) is fine.
  EXPECT_TRUE(lint_source(
                  ".data\n"
                  "  .align 3\n"
                  "buf:\n"
                  "  .space 8\n"
                  ".text\n"
                  "_start:\n"
                  "  la a0, buf\n"
                  "  lw a1, 0(a0)\n"  // unknown: both branch paths live
                  "  li t0, 3\n"
                  "  fcvt.d.w ft3, t0\n"
                  "  bnez a1, after\n"
                  "  frep.o t0, 1\n"
                  "  fadd.d ft3, ft3, ft3\n"
                  "after:\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, DmaLoadBeforeWait) {
  const auto d = single_diag(lint_source(
      "_start:\n"
      "  li a0, 0x80000000\n"
      "  li a1, 0x10000000\n"
      "  li a2, 256\n"
      "  dmsrc a0\n"
      "  dmdst a1\n"
      "  dmcpy t0, a2\n"
      "  lw a3, 16(a1)\n"
      "  dmwait\n"
      "  ecall\n"));
  EXPECT_EQ(d.rule, Rule::kDmaLoadBeforeWait);
  EXPECT_EQ(d.pc, 0x1018u);
  EXPECT_EQ(d.hart, 0u);
  EXPECT_EQ(d.label, "_start+0x18");
  EXPECT_NE(d.message.find("dmwait"), std::string::npos);

  EXPECT_TRUE(lint_source(
                  "_start:\n"
                  "  li a0, 0x80000000\n"
                  "  li a1, 0x10000000\n"
                  "  li a2, 256\n"
                  "  dmsrc a0\n"
                  "  dmdst a1\n"
                  "  dmcpy t0, a2\n"
                  "  dmwait\n"
                  "  lw a3, 16(a1)\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, BarrierDivergence) {
  // Hart 1 branches around the barrier; hart 0 blocks forever.
  const auto d = single_diag(lint_source(
      "_start:\n"
      "  csrr a0, mhartid\n"
      "  bnez a0, done\n"
      "  csrr zero, barrier\n"
      "done:\n"
      "  ecall\n",
      /*cores=*/2));
  EXPECT_EQ(d.rule, Rule::kBarrierDivergence);
  EXPECT_EQ(d.pc, 0x1008u);
  EXPECT_EQ(d.hart, 1u);  // the hart that cannot reach the barrier
  EXPECT_EQ(d.label, "_start+0x8");

  EXPECT_TRUE(lint_source(
                  "_start:\n"
                  "  csrr zero, barrier\n"
                  "  ecall\n",
                  /*cores=*/2)
                  .clean());
}

TEST(LintRules, TiledRegClobber) {
  const auto d = single_diag(lint_source(
      ".data\n"
      "  .align 3\n"
      "buf:\n"
      "  .space 64\n"
      ".text\n"
      "_start:\n"
      "  li gp, 4\n"
      "  li ra, 0\n"
      "  li tp, 0\n"
      "tile_loop:\n"
      "  la a0, buf\n"
      "  lw t0, 0(a0)\n"
      "  xor ra, ra, t0\n"
      "  add tp, tp, t0\n"
      "  li ra, 7\n"
      "  addi gp, gp, -1\n"
      "  bnez gp, tile_loop\n"
      "  ecall\n"));
  EXPECT_EQ(d.rule, Rule::kTiledRegClobber);
  EXPECT_EQ(d.pc, 0x1020u);
  EXPECT_EQ(d.hart, kAnyHart);
  EXPECT_EQ(d.label, "tile_loop+0x14");
  EXPECT_NE(d.message.find("ra"), std::string::npos);

  // The same loop without the stray write follows the convention exactly.
  EXPECT_TRUE(lint_source(
                  ".data\n"
                  "  .align 3\n"
                  "buf:\n"
                  "  .space 64\n"
                  ".text\n"
                  "_start:\n"
                  "  li gp, 4\n"
                  "  li ra, 0\n"
                  "  li tp, 0\n"
                  "tile_loop:\n"
                  "  la a0, buf\n"
                  "  lw t0, 0(a0)\n"
                  "  xor ra, ra, t0\n"
                  "  add tp, tp, t0\n"
                  "  addi gp, gp, -1\n"
                  "  bnez gp, tile_loop\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, UnreachableCode) {
  const auto d = single_diag(lint_source(
      "_start:\n"
      "  j end\n"
      "  li a0, 42\n"
      "end:\n"
      "  ecall\n"));
  EXPECT_EQ(d.rule, Rule::kUnreachableCode);
  EXPECT_EQ(d.pc, 0x1004u);
  EXPECT_EQ(d.hart, kAnyHart);
  EXPECT_EQ(d.label, "_start+0x4");

  EXPECT_TRUE(lint_source(
                  "_start:\n"
                  "  li a0, 42\n"
                  "  ecall\n")
                  .clean());
}

TEST(LintRules, FallOffEnd) {
  const auto d = single_diag(lint_source(
      "_start:\n"
      "  li a0, 1\n"
      "  addi a0, a0, 1\n"));
  EXPECT_EQ(d.rule, Rule::kFallOffEnd);
  EXPECT_EQ(d.pc, 0x1004u);  // the last instruction of the falling block
  EXPECT_EQ(d.hart, kAnyHart);
  EXPECT_EQ(d.label, "_start+0x4");

  EXPECT_TRUE(lint_source(
                  "_start:\n"
                  "  li a0, 1\n"
                  "  addi a0, a0, 1\n"
                  "  ecall\n")
                  .clean());
}

// --- identifiers, rendering, modes ------------------------------------------

TEST(LintApi, RuleIdsAreStableKebabCase) {
  const char* expected[kNumRules] = {
      "use-before-def",
      "oob-access",
      "ssr-read-before-config",
      "ssr-reconfig-while-streaming",
      "frep-body-non-fp",
      "frep-branch-into-body",
      "dma-load-before-wait",
      "barrier-divergence",
      "tiled-reg-clobber",
      "unreachable-code",
      "fall-off-end",
  };
  for (std::size_t i = 0; i < kNumRules; ++i) {
    EXPECT_STREQ(rule_id(static_cast<Rule>(i)), expected[i]);
  }
}

TEST(LintApi, DiagFormatCarriesPcLabelAndHart) {
  const auto report = lint_source(
      "_start:\n"
      "  li a0, 0x20000000\n"
      "  lw a1, 0(a0)\n"
      "  ecall\n");
  ASSERT_EQ(report.diags.size(), 1u);
  const std::string line = report.diags[0].format();
  EXPECT_EQ(line.find("oob-access @ 0x1004 (_start+0x4) [hart 0]: "), 0u) << line;

  // Structural diagnostics omit the hart clause.
  const auto structural = lint_source("_start:\n  li a0, 1\n");
  ASSERT_EQ(structural.diags.size(), 1u);
  EXPECT_EQ(structural.diags[0].format().find("[hart"), std::string::npos);
}

TEST(LintApi, JsonReportShape) {
  const auto report = lint_source(
      "_start:\n"
      "  li a0, 0x20000000\n"
      "  lw a1, 0(a0)\n"
      "  ecall\n");
  const std::string json = report.json();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rules\":11"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"oob-access\""), std::string::npos);
  EXPECT_NE(json.find("\"pc\":4100"), std::string::npos);
  EXPECT_NE(json.find("\"hart\":0"), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"_start+0x4\""), std::string::npos);

  // Structural rules serialize hart as null, and a clean report says so.
  const auto clean = lint_source("_start:\n  ecall\n");
  EXPECT_NE(clean.json().find("\"clean\":true"), std::string::npos);
  EXPECT_NE(lint_source("_start:\n  li a0, 1\n").json().find("\"hart\":null"),
            std::string::npos);
}

TEST(LintApi, ModeParsingIsStrict) {
  EXPECT_EQ(mode_from("off"), Mode::kOff);
  EXPECT_EQ(mode_from("warn"), Mode::kWarn);
  EXPECT_EQ(mode_from("strict"), Mode::kStrict);
  EXPECT_THROW((void)mode_from(""), Error);
  EXPECT_THROW((void)mode_from("Strict"), Error);
  EXPECT_THROW((void)mode_from("warn "), Error);
  EXPECT_THROW((void)mode_from("lax"), Error);
  for (const auto m : {Mode::kOff, Mode::kWarn, Mode::kStrict}) {
    EXPECT_EQ(mode_from(mode_name(m)), m);
  }
}

// --- registry-wide sweep: every generated program lints clean ---------------

TEST(LintRegistry, EveryGeneratedProgramIsClean) {
  const auto& registry = workload::WorkloadRegistry::instance();
  unsigned checked = 0;
  for (const auto& name : registry.names()) {
    const auto handle = registry.at(name);
    for (const auto variant : handle->variants()) {
      for (const std::uint32_t cores : {1u, 2u, 4u}) {
        for (const std::uint32_t tile : {0u, 96u}) {
          workload::WorkloadConfig config;
          config.cores = cores;
          config.tile = tile;
          try {
            handle->validate(variant, config);
          } catch (const workload::ConfigError&) {
            continue;  // e.g. single-hart workloads at cores>1, untileable
          }
          const auto generated = handle->instantiate(variant, config);
          const auto program = rvasm::assemble(generated.source);
          const auto report = lint_program(program, cores);
          EXPECT_TRUE(report.clean())
              << generated.name() << " cores=" << cores << " tile=" << tile << "\n"
              << report.summary();
          EXPECT_TRUE(report.analysis_complete) << generated.name();
          ++checked;
        }
      }
    }
  }
  // The registry ships 8 workloads; make sure the skip logic did not silently
  // swallow the sweep.
  EXPECT_GE(checked, 40u);
}

// --- observation-only: linting never perturbs simulation --------------------

TEST(LintPipeline, ObservationOnly) {
  const auto handle = workload::WorkloadRegistry::instance().at("exp");
  workload::WorkloadConfig config;
  config.n = 192;
  config.block = 32;
  const auto kernel = handle->instantiate(workload::Variant::kCopift, config);

  kernels::KernelRun off_run;
  {
    ModeGuard guard(Mode::kOff);
    off_run = kernels::run_kernel(kernel, {}, /*verify=*/true);
  }
  kernels::KernelRun strict_run;
  {
    ModeGuard guard(Mode::kStrict);
    strict_run = kernels::run_kernel(kernel, {}, /*verify=*/true);
  }
  EXPECT_TRUE(off_run.verified);
  EXPECT_TRUE(strict_run.verified);
  EXPECT_EQ(off_run.result.cycles, strict_run.result.cycles);
  EXPECT_EQ(off_run.result.exit_code, strict_run.result.exit_code);
  EXPECT_EQ(off_run.total.cycles, strict_run.total.cycles);
  EXPECT_EQ(off_run.total.retired(), strict_run.total.retired());
  EXPECT_EQ(off_run.region.cycles, strict_run.region.cycles);
}

// --- strict mode propagates through the pipeline hook -----------------------

TEST(LintPipeline, StrictModeThrowsFromAssembleKernel) {
  ModeGuard guard(Mode::kStrict);
  kernels::GeneratedKernel kernel;
  kernel.source =
      "_start:\n"
      "  add a0, a1, a2\n"
      "  ecall\n";
  kernel.config.cores = 1;
  try {
    (void)kernels::assemble_kernel(kernel);
    FAIL() << "expected a lint error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lint"), std::string::npos) << what;
    EXPECT_NE(what.find("use-before-def"), std::string::npos) << what;
    EXPECT_NE(what.find("_start"), std::string::npos) << what;
  }

  // A clean program sails through unchanged under strict.
  kernel.source = "_start:\n  ecall\n";
  EXPECT_NE(kernels::assemble_kernel(kernel), nullptr);
}

TEST(LintPipeline, WarnModeContinues) {
  ModeGuard guard(Mode::kWarn);
  kernels::GeneratedKernel kernel;
  kernel.source =
      "_start:\n"
      "  add a0, a1, a2\n"
      "  ecall\n";
  kernel.config.cores = 1;
  EXPECT_NE(kernels::assemble_kernel(kernel), nullptr);  // warns on stderr only
}

}  // namespace
}  // namespace copift::lint

#include "core/model.hpp"

#include <gtest/gtest.h>

#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"

namespace copift::core {
namespace {

using kernels::KernelId;
using kernels::Variant;

TEST(Model, ThreadImbalanceDefinition) {
  InstrMix mix;
  mix.n_int = 43;
  mix.n_fp = 52;
  EXPECT_NEAR(mix.thread_imbalance(), 43.0 / 52.0, 1e-12);
  EXPECT_EQ(mix.total(), 95u);
  EXPECT_EQ(mix.max_thread(), 52u);
}

TEST(Model, PaperTableOneExpRow) {
  // Table I, expf row: base 43/52, COPIFT 43/36 => I' 1.84, S'' 1.83, S' 2.21.
  SpeedupModel m;
  m.base = {43, 52};
  m.copift = {43, 36};
  EXPECT_NEAR(m.s_prime(), 2.21, 0.01);
  EXPECT_NEAR(m.s_double_prime(), 1.83, 0.01);
  EXPECT_NEAR(m.i_prime(), 1.84, 0.01);
}

TEST(Model, PaperTableOneMonteCarloRows) {
  // pi_lcg: base 44/56, COPIFT 72/56 => I' 1.78, S'' 1.79, S' 1.39.
  SpeedupModel pi;
  pi.base = {44, 56};
  pi.copift = {72, 56};
  EXPECT_NEAR(pi.i_prime(), 1.78, 0.01);
  EXPECT_NEAR(pi.s_double_prime(), 1.79, 0.01);
  EXPECT_NEAR(pi.s_prime(), 1.39, 0.01);
  // pi_xoshiro128p: base 172/56, COPIFT 200/56 => S'' 1.33, S' 1.14.
  SpeedupModel px;
  px.base = {172, 56};
  px.copift = {200, 56};
  EXPECT_NEAR(px.s_double_prime(), 1.33, 0.01);
  EXPECT_NEAR(px.s_prime(), 1.14, 0.01);
}

TEST(Model, CountMixSeparatesDomains) {
  const auto program = rvasm::assemble(R"(
a:
  add a0, a1, a2
  fadd.d fa0, fa1, fa2
  fld fa3, 0(a0)
  frep.o t0, 1
  scfgwi a0, 24
b:
  ecall
)");
  const InstrMix mix = count_mix(program, "a", "b");
  EXPECT_EQ(mix.n_int, 3u);  // add, frep.o, scfgwi
  EXPECT_EQ(mix.n_fp, 2u);   // fadd.d, fld
}

TEST(Model, GeneratedKernelMixesMatchPaperOrdering) {
  // Table I orders kernels by S' derived from their thread imbalance; the
  // generated baselines must reproduce the same TI ordering:
  // pi_x < poly_x < poly_lcg < pi_lcg ~ logf ~ expf.
  kernels::KernelConfig cfg;
  cfg.n = 256;
  cfg.block = 32;
  const auto ti = [&](KernelId id) {
    const auto g = kernels::generate(id, Variant::kBaseline, cfg);
    const auto program = rvasm::assemble(g.source);
    return count_mix(program, "body_begin", "body_end").thread_imbalance();
  };
  const double exp_ti = ti(KernelId::kExp);
  const double log_ti = ti(KernelId::kLog);
  const double poly_lcg_ti = ti(KernelId::kPolyLcg);
  const double pi_lcg_ti = ti(KernelId::kPiLcg);
  const double poly_x_ti = ti(KernelId::kPolyXoshiro);
  const double pi_x_ti = ti(KernelId::kPiXoshiro);
  EXPECT_LT(pi_x_ti, poly_x_ti);
  EXPECT_LT(poly_x_ti, poly_lcg_ti);
  EXPECT_LT(poly_lcg_ti, pi_lcg_ti);
  // Paper: expf TI 0.83, logf 0.75, poly_lcg 0.55, pi_lcg 0.79,
  //        poly_x 0.47, pi_x 0.33. Allow modest deviations (our log
  //        baseline carries one extra pointer bump per iteration).
  EXPECT_NEAR(exp_ti, 0.83, 0.08);
  EXPECT_NEAR(log_ti, 0.78, 0.09);
  EXPECT_NEAR(poly_lcg_ti, 0.55, 0.08);
  EXPECT_NEAR(pi_lcg_ti, 0.79, 0.08);
  EXPECT_NEAR(poly_x_ti, 0.47, 0.06);
  EXPECT_NEAR(pi_x_ti, 0.33, 0.05);
}

TEST(Model, BaselineInstructionCountsNearPaper) {
  kernels::KernelConfig cfg;
  cfg.n = 256;
  cfg.block = 32;
  const auto mix_of = [&](KernelId id) {
    const auto g = kernels::generate(id, Variant::kBaseline, cfg);
    return count_mix(rvasm::assemble(g.source), "body_begin", "body_end");
  };
  // exp: paper 43 int / 52 FP per 4-element body.
  const InstrMix exp = mix_of(KernelId::kExp);
  EXPECT_NEAR(static_cast<double>(exp.n_int), 43, 2);
  EXPECT_EQ(exp.n_fp, 52u);
  // log: paper 39 int / 52 FP.
  const InstrMix log = mix_of(KernelId::kLog);
  EXPECT_NEAR(static_cast<double>(log.n_int), 39, 5);
  EXPECT_EQ(log.n_fp, 52u);
  // pi_lcg: paper 44 int / 56 FP per 8 samples.
  const InstrMix pi = mix_of(KernelId::kPiLcg);
  EXPECT_NEAR(static_cast<double>(pi.n_int), 44, 3);
  EXPECT_EQ(pi.n_fp, 56u);
  // poly_lcg: paper 44 int / 80 FP.
  const InstrMix poly = mix_of(KernelId::kPolyLcg);
  EXPECT_EQ(poly.n_fp, 80u);
  // pi_xoshiro: paper 172 int / 56 FP.
  const InstrMix pix = mix_of(KernelId::kPiXoshiro);
  EXPECT_NEAR(static_cast<double>(pix.n_int), 172, 6);
  EXPECT_EQ(pix.n_fp, 56u);
}

TEST(Model, SPrimePredictsMeaningfulSpeedups) {
  // Use *dynamic* per-run instruction mixes (region counters), as the
  // static COPIFT body spans a whole block while the baseline body spans
  // one unrolled group. Both runs cover the same n, so the ratios in
  // Eq. 1-2 are directly comparable.
  kernels::KernelConfig cfg;
  cfg.n = 512;
  cfg.block = 64;
  for (const auto id : kernels::kAllKernels) {
    const auto base = kernels::run_kernel(kernels::generate(id, Variant::kBaseline, cfg));
    const auto cop = kernels::run_kernel(kernels::generate(id, Variant::kCopift, cfg));
    SpeedupModel m;
    m.base = {base.region.int_retired, base.region.fp_retired};
    m.copift = {cop.region.int_retired, cop.region.fp_retired};
    EXPECT_GT(m.s_prime(), 1.0) << kernels::kernel_name(id);
    EXPECT_LT(m.s_prime(), 2.6) << kernels::kernel_name(id);
    EXPECT_GT(m.i_prime(), 1.0) << kernels::kernel_name(id);
    EXPECT_LE(m.i_prime(), 2.0) << kernels::kernel_name(id);
    // The analytical S' brackets the measured speedup within ~35%
    // (paper Fig. 2c shows the same qualitative agreement).
    const double measured = static_cast<double>(base.region.cycles) /
                            static_cast<double>(cop.region.cycles);
    EXPECT_GT(measured, 0.6 * m.s_prime()) << kernels::kernel_name(id);
    EXPECT_LT(measured, 1.45 * m.s_prime()) << kernels::kernel_name(id);
  }
}

}  // namespace
}  // namespace copift::core

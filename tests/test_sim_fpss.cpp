#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/layout.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"

namespace copift::sim {
namespace {

Cluster run(const std::string& src, SimParams params = {}) {
  Cluster cluster(rvasm::assemble(src), params);
  cluster.run();
  return cluster;
}

double freg(Cluster& c, unsigned i) {
  return copift::bit_cast<double>(c.fpss().rf().read(i));
}

TEST(Fpss, BasicFpArithmetic) {
  auto c = run(R"(
.data
a: .double 1.5
b: .double 2.25
.text
  la a0, a
  fld fa0, 0(a0)
  fld fa1, 8(a0)
  fadd.d fa2, fa0, fa1
  fmul.d fa3, fa0, fa1
  fmadd.d fa4, fa0, fa1, fa2
  csrr t0, fpss
  ecall
)");
  EXPECT_EQ(freg(c, 12), 3.75);
  EXPECT_EQ(freg(c, 13), 3.375);
  EXPECT_EQ(freg(c, 14), 1.5 * 2.25 + 3.75);
}

TEST(Fpss, FpStoreVisibleInMemory) {
  auto c = run(R"(
.data
v: .double 4.0
out: .double 0.0
.text
  la a0, v
  fld fa0, 0(a0)
  fsqrt.d fa1, fa0
  la a1, out
  fsd fa1, 0(a1)
  csrr t0, fpss
  ecall
)");
  EXPECT_EQ(copift::bit_cast<double>(c.memory().load64(c.program().symbol("out"))), 2.0);
}

TEST(Fpss, FltWritesIntegerRegister) {
  auto c = run(R"(
.data
a: .double 1.0
b: .double 2.0
.text
  la a0, a
  fld fa0, 0(a0)
  fld fa1, 8(a0)
  flt.d a1, fa0, fa1
  flt.d a2, fa1, fa0
  fclass.d a3, fa0
  ecall
)");
  EXPECT_EQ(c.core().reg(11), 1u);
  EXPECT_EQ(c.core().reg(12), 0u);
  EXPECT_EQ(c.core().reg(13), 1u << 6);  // positive normal
}

TEST(Fpss, IntLoadAfterFpStoreIsOrdered) {
  // fsd then lw to the same address must observe the stored value
  // (the memory-ordering interlock; paper Fig. 1b insts 4-5).
  auto c = run(R"(
.data
spill: .double 0.0
k: .double 1234.5
.text
  la a0, spill
  la a1, k
  fld fa0, 0(a1)
  fsd fa0, 0(a0)
  lw a2, 0(a0)
  lw a3, 4(a0)
  ecall
)");
  const std::uint64_t bits = copift::bit_cast<std::uint64_t>(1234.5);
  EXPECT_EQ(c.core().reg(12), static_cast<std::uint32_t>(bits));
  EXPECT_EQ(c.core().reg(13), static_cast<std::uint32_t>(bits >> 32));
  EXPECT_GT(c.counters().stall_mem_order, 0u);
}

TEST(Fpss, FrepReplayReachesDualIssue) {
  // An FREP loop of independent FP ops runs concurrently with an integer
  // loop: total IPC must exceed 1 (pseudo dual-issue).
  auto c = run(R"(
.data
one: .double 1.0
.text
  la a0, one
  fld fa0, 0(a0)
  fcvt.d.w fa1, zero
  li t0, 199         # 200 FREP iterations
  csrwi region, 1
  frep.o t0, 4
  fadd.d fa1, fa1, fa0
  fadd.d fa2, fa2, fa0
  fadd.d fa3, fa3, fa0
  fadd.d fa4, fa4, fa0
  li a1, 200
iloop:
  addi a2, a2, 1
  addi a3, a3, 3
  addi a1, a1, -1
  bnez a1, iloop
  csrr t1, fpss
  csrwi region, 2
  ecall
)");
  ASSERT_EQ(c.regions().size(), 2u);
  const auto d = c.regions()[1].snapshot.minus(c.regions()[0].snapshot);
  EXPECT_GT(d.ipc(), 1.3);
  EXPECT_LE(d.ipc(), 2.0);
  EXPECT_GT(d.frep_replays, 700u);
  EXPECT_EQ(freg(c, 11), 200.0);  // accumulated once per iteration
}

TEST(Fpss, RetireRateNeverExceedsTwo) {
  auto c = run(R"(
  fcvt.d.w fa0, zero
  li t0, 99
  frep.o t0, 2
  fadd.d fa1, fa1, fa0
  fadd.d fa2, fa2, fa0
  li a1, 100
x:
  addi a1, a1, -1
  bnez a1, x
  csrr t1, fpss
  ecall
)");
  EXPECT_LE(c.counters().retired(), 2 * c.counters().cycles);
}

TEST(Fpss, BarrierWaitsForPreviousFrepEpoch) {
  // copift.barrier waits for everything offloaded before the most recent
  // frep.o. Produce a buffer with a first FREP, issue a second FREP, then a
  // barrier: integer loads of the FIRST buffer must see the data while the
  // second FREP may still be running (the steady-state pattern of the
  // COPIFT schedule, paper Fig. 1j).
  auto c = run(R"(
.data
one: .double 1.0
buf: .space 64
buf2: .space 64
.text
  la a0, one
  fld fa0, 0(a0)
  csrsi ssr, 1
  li t0, 7
  scfgwi t0, 33        # lane1 bound0 = 7
  li t0, 8
  scfgwi t0, 37        # lane1 stride0 = 8
  la t0, buf
  scfgwi t0, 60        # lane1 WPTR0 -> buf (1-D)
  li t0, 7
  frep.o t0, 1
  fadd.d ft1, fa0, fa0   # write 2.0 x8 into buf
  li t0, 7
  scfgwi t0, 65        # lane2 bound0 = 7
  li t0, 8
  scfgwi t0, 69        # lane2 stride0 = 8
  la t0, buf2
  scfgwi t0, 92        # lane2 WPTR0 -> buf2
  li t0, 7
  frep.o t0, 1
  fadd.d ft2, fa0, fa0   # second FREP (current epoch)
  copift.barrier         # waits for the FIRST frep only
  la a1, buf
  lw a2, 56(a1)          # low word of buf[7]
  lw a3, 60(a1)          # high word
  csrr t1, fpss
  csrci ssr, 1
  ecall
)");
  const std::uint64_t two = copift::bit_cast<std::uint64_t>(2.0);
  EXPECT_EQ(c.core().reg(12), static_cast<std::uint32_t>(two));
  EXPECT_EQ(c.core().reg(13), static_cast<std::uint32_t>(two >> 32));
}

TEST(Fpss, SsrReadStreamFeedsFrep) {
  auto c = run(R"(
.data
vec: .double 1.0, 2.0, 3.0, 4.0
.text
  fcvt.d.w fa1, zero
  csrsi ssr, 1
  li t0, 3
  scfgwi t0, 1         # lane0 bound0 = 3
  li t0, 8
  scfgwi t0, 5         # lane0 stride0 = 8
  la t0, vec
  scfgwi t0, 24        # lane0 RPTR0
  li t0, 3
  frep.o t0, 1
  fadd.d fa1, fa1, ft0
  csrr t1, fpss
  csrci ssr, 1
  ecall
)");
  EXPECT_EQ(freg(c, 11), 10.0);
}

TEST(Fpss, XcopiftSequenceInFrep) {
  // Stream raw integers, convert with fcvt.d.wu.cop, compare with
  // flt.d.cop, accumulate with fadd.d: the full paper mechanism.
  auto c = run(R"(
.data
.align 3
raw: .word 10, 0, 200, 0, 30, 0, 400, 0   # 4 cells: 10, 200, 30, 400
half: .double 100.0
.text
  la a0, half
  fld fs0, 0(a0)
  fcvt.d.w fa5, zero
  csrsi ssr, 1
  li t0, 3
  scfgwi t0, 1
  li t0, 8
  scfgwi t0, 5
  la t0, raw
  scfgwi t0, 24
  li t0, 3
  frep.o t0, 3
  fcvt.d.wu.cop fa0, ft0
  flt.d.cop fa1, fa0, fs0    # value < 100?
  fadd.d fa5, fa5, fa1
  csrr t1, fpss
  csrci ssr, 1
  ecall
)");
  EXPECT_EQ(freg(c, 15), 2.0);  // 10 and 30 are below 100
}

TEST(Fpss, OffloadFifoBackpressure) {
  // Long-latency FP chain with dependent ops fills the FIFO; the core
  // must stall rather than lose instructions.
  auto c = run(R"(
.data
v: .double 1.000001
.text
  la a0, v
  fld fa0, 0(a0)
  fmv.d fa1, fa0
  fdiv.d fa1, fa1, fa0
  fdiv.d fa1, fa1, fa0
  fdiv.d fa1, fa1, fa0
  fdiv.d fa1, fa1, fa0
  fadd.d fa2, fa1, fa0
  fadd.d fa3, fa2, fa0
  fadd.d fa4, fa3, fa0
  fsub.d fa5, fa4, fa0
  fsub.d fa6, fa5, fa0
  fsub.d fa7, fa6, fa0
  fmul.d fs0, fa7, fa0
  fmul.d fs1, fs0, fa0
  csrr t0, fpss
  ecall
)");
  EXPECT_GT(c.counters().stall_offload_full, 0u);
}

TEST(Fpss, SsrDisableDrainsStreams) {
  auto c = run(R"(
.data
buf: .space 32
one: .double 1.0
.text
  la a0, one
  fld fa0, 0(a0)
  csrsi ssr, 1
  li t0, 3
  scfgwi t0, 33
  li t0, 8
  scfgwi t0, 37
  la t0, buf
  scfgwi t0, 60
  li t0, 3
  frep.o t0, 1
  fadd.d ft1, fa0, fa0
  csrci ssr, 1          # must wait until the write stream drained
  la a1, buf
  lw a2, 24(a1)
  ecall
)");
  const std::uint64_t two = copift::bit_cast<std::uint64_t>(2.0);
  EXPECT_EQ(c.core().reg(12), static_cast<std::uint32_t>(two));
}

TEST(Fpss, ScfgriReadsBack) {
  auto c = run(R"(
  li a0, 1234
  scfgwi a0, 2
  scfgri a1, 2
  ecall
)");
  EXPECT_EQ(c.core().reg(11), 1234u);
}

}  // namespace
}  // namespace copift::sim

#include "ssr/ssr.hpp"

#include <gtest/gtest.h>

#include <random>

#include "common/error.hpp"
#include "common/layout.hpp"

namespace copift::ssr {
namespace {

/// Reference address enumeration for a 4-D affine stream.
std::vector<std::uint32_t> reference_addresses(std::uint32_t base, unsigned dims,
                                               std::array<std::uint32_t, 4> bounds,
                                               std::array<std::int32_t, 4> strides) {
  std::vector<std::uint32_t> out;
  std::array<std::uint32_t, 4> n = {1, 1, 1, 1};
  for (unsigned d = 0; d < dims; ++d) n[d] = bounds[d] + 1;
  for (std::uint32_t i3 = 0; i3 < n[3]; ++i3)
    for (std::uint32_t i2 = 0; i2 < n[2]; ++i2)
      for (std::uint32_t i1 = 0; i1 < n[1]; ++i1)
        for (std::uint32_t i0 = 0; i0 < n[0]; ++i0)
          out.push_back(base + i0 * static_cast<std::uint32_t>(strides[0]) +
                        i1 * static_cast<std::uint32_t>(strides[1]) +
                        i2 * static_cast<std::uint32_t>(strides[2]) +
                        i3 * static_cast<std::uint32_t>(strides[3]));
  return out;
}

TEST(AffineGenerator, Simple1D) {
  AffineGenerator gen;
  gen.configure(kTcdmBase, 1, {3, 0, 0, 0}, {8, 0, 0, 0});
  std::vector<std::uint32_t> got;
  while (!gen.done()) {
    got.push_back(gen.current());
    gen.advance();
  }
  EXPECT_EQ(got, (std::vector<std::uint32_t>{kTcdmBase, kTcdmBase + 8, kTcdmBase + 16,
                                             kTcdmBase + 24}));
}

TEST(AffineGenerator, NegativeStride) {
  AffineGenerator gen;
  gen.configure(kTcdmBase + 16, 1, {2, 0, 0, 0}, {-8, 0, 0, 0});
  std::vector<std::uint32_t> got;
  while (!gen.done()) {
    got.push_back(gen.current());
    gen.advance();
  }
  EXPECT_EQ(got, (std::vector<std::uint32_t>{kTcdmBase + 16, kTcdmBase + 8, kTcdmBase}));
}

class AffineGeneratorRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(AffineGeneratorRandom, MatchesReferenceLoopNest) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned dims = 1 + rng() % 4;
    std::array<std::uint32_t, 4> bounds{};
    std::array<std::int32_t, 4> strides{};
    for (unsigned d = 0; d < dims; ++d) {
      bounds[d] = rng() % 4;
      strides[d] = static_cast<std::int32_t>(rng() % 64) - 32;
    }
    const std::uint32_t base = kTcdmBase + 4096;
    AffineGenerator gen;
    gen.configure(base, dims, bounds, strides);
    const auto expected = reference_addresses(base, dims, bounds, strides);
    EXPECT_EQ(gen.total(), expected.size());
    std::vector<std::uint32_t> got;
    while (!gen.done()) {
      got.push_back(gen.current());
      gen.advance();
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineGeneratorRandom, ::testing::Values(1, 2, 3, 4, 5));

TEST(AffineGenerator, InvalidDims) {
  AffineGenerator gen;
  EXPECT_THROW(gen.configure(0, 0, {}, {}), SimError);
  EXPECT_THROW(gen.configure(0, 5, {}, {}), SimError);
}

// ---- Lane-level behaviour ----

struct LaneHarness {
  mem::AddressSpace memory;
  SsrLane lane{4};

  void pump_data() {
    std::uint32_t addr = 0;
    if (lane.wants_data_access(addr)) lane.data_granted(memory);
    lane.commit_cycle();
  }
  void pump_index() {
    std::uint32_t addr = 0;
    if (lane.wants_index_access(addr)) lane.index_granted(memory);
  }
};

TEST(SsrLane, ReadStreamDeliversMemory) {
  LaneHarness h;
  for (unsigned i = 0; i < 8; ++i) h.memory.store64(kTcdmBase + i * 8, 100 + i);
  h.lane.write_cfg(kRegBound0, 7);
  h.lane.write_cfg(kRegStride0, 8);
  h.lane.write_cfg(kRegRptr0, kTcdmBase);  // arm
  EXPECT_TRUE(h.lane.is_read_stream());
  EXPECT_FALSE(h.lane.can_pop());  // data arrives next cycle
  for (unsigned i = 0; i < 8; ++i) {
    while (!h.lane.can_pop()) h.pump_data();
    EXPECT_EQ(h.lane.pop(), 100 + i);
  }
  EXPECT_TRUE(h.lane.idle());
}

TEST(SsrLane, ReadFifoDepthLimitsPrefetch) {
  LaneHarness h;
  h.lane.write_cfg(kRegBound0, 31);
  h.lane.write_cfg(kRegStride0, 8);
  h.lane.write_cfg(kRegRptr0, kTcdmBase);
  for (int i = 0; i < 20; ++i) h.pump_data();
  // FIFO depth 4: no more than 4 elements buffered.
  EXPECT_EQ(h.lane.ready_count(), 4u);
}

TEST(SsrLane, WriteStreamDrainsToMemory) {
  LaneHarness h;
  h.lane.write_cfg(kRegBound0, 3);
  h.lane.write_cfg(kRegStride0, 8);
  h.lane.write_cfg(kRegWptr0, kTcdmBase + 64);
  EXPECT_TRUE(h.lane.is_write_stream());
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_TRUE(h.lane.can_push());
    h.lane.push(1000 + i);
    h.pump_data();
  }
  while (!h.lane.idle()) h.pump_data();
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(h.memory.load64(kTcdmBase + 64 + i * 8), 1000 + i);
}

TEST(SsrLane, WriteTokensReportDrain) {
  LaneHarness h;
  h.lane.write_cfg(kRegBound0, 1);
  h.lane.write_cfg(kRegStride0, 8);
  h.lane.write_cfg(kRegWptr0, kTcdmBase);
  h.lane.push(7, /*token=*/42);
  EXPECT_FALSE(h.lane.has_drained_tokens());
  h.pump_data();
  ASSERT_TRUE(h.lane.has_drained_tokens());
  ASSERT_EQ(h.lane.drained_tokens().size(), 1u);
  EXPECT_EQ(h.lane.drained_tokens()[0], 42u);
  h.lane.clear_drained_tokens();
  EXPECT_FALSE(h.lane.has_drained_tokens());  // consumed
}

TEST(SsrLane, RepeatDeliversElementTwice) {
  LaneHarness h;
  h.memory.store64(kTcdmBase, 5);
  h.memory.store64(kTcdmBase + 8, 6);
  h.lane.write_cfg(kRegRepeat, 1);  // each element delivered twice
  h.lane.write_cfg(kRegBound0, 1);
  h.lane.write_cfg(kRegStride0, 8);
  h.lane.write_cfg(kRegRptr0, kTcdmBase);
  std::vector<std::uint64_t> got;
  while (got.size() < 4) {
    while (!h.lane.can_pop()) h.pump_data();
    got.push_back(h.lane.pop());
  }
  EXPECT_EQ(got, (std::vector<std::uint64_t>{5, 5, 6, 6}));
}

TEST(SsrLane, IndirectionFollowsIndices) {
  LaneHarness h;
  // Data table at kTcdmBase: T[i] = 100 + i.
  for (unsigned i = 0; i < 16; ++i) h.memory.store64(kTcdmBase + i * 8, 100 + i);
  // Index array: [3, 0, 7, 7].
  const std::uint32_t idx_base = kTcdmBase + 1024;
  const std::uint32_t indices[] = {3, 0, 7, 7};
  for (unsigned i = 0; i < 4; ++i) h.memory.store32(idx_base + i * 4, indices[i]);
  h.lane.write_cfg(kRegIdxBase, idx_base);
  h.lane.write_cfg(kRegIdxShift, 3);
  h.lane.write_cfg(kRegIdxCfg, 4);
  h.lane.write_cfg(kRegRptr0, kTcdmBase);  // arm: indirect read
  std::vector<std::uint64_t> got;
  while (got.size() < 4) {
    h.pump_index();
    h.pump_data();
    while (h.lane.can_pop()) got.push_back(h.lane.pop());
  }
  EXPECT_EQ(got, (std::vector<std::uint64_t>{103, 100, 107, 107}));
  EXPECT_TRUE(h.lane.idle());
}

TEST(SsrLane, IndirectionIsOneShot) {
  LaneHarness h;
  h.memory.store32(kTcdmBase + 512, 0);
  h.lane.write_cfg(kRegIdxBase, kTcdmBase + 512);
  h.lane.write_cfg(kRegIdxShift, 3);
  h.lane.write_cfg(kRegIdxCfg, 1);
  h.lane.write_cfg(kRegRptr0, kTcdmBase);
  EXPECT_EQ(h.lane.read_cfg(kRegIdxCfg), 0u);  // consumed by arming
  // Next arm is a plain affine stream.
  h.lane.write_cfg(kRegBound0, 0);
  h.lane.write_cfg(kRegStride0, 8);
  h.lane.write_cfg(kRegRptr0, kTcdmBase);
  std::uint32_t addr = 0;
  EXPECT_FALSE(h.lane.wants_index_access(addr));
}

TEST(SsrLane, RearmUndrainedWriteThrows) {
  LaneHarness h;
  h.lane.write_cfg(kRegBound0, 3);
  h.lane.write_cfg(kRegStride0, 8);
  h.lane.write_cfg(kRegWptr0, kTcdmBase);
  h.lane.push(1);
  EXPECT_THROW(h.lane.write_cfg(kRegWptr0, kTcdmBase + 64), SimError);
}

TEST(SsrLane, PopEmptyThrows) {
  SsrLane lane;
  EXPECT_THROW(lane.pop(), SimError);
}

TEST(SsrUnit, ConfigDecodeByLane) {
  mem::AddressSpace memory;
  SsrUnit unit(memory);
  unit.write_cfg(1 * 32 + kRegBound0, 5);
  EXPECT_EQ(unit.read_cfg(1 * 32 + kRegBound0), 5u);
  EXPECT_EQ(unit.read_cfg(0 * 32 + kRegBound0), 0u);
  EXPECT_THROW(unit.write_cfg(3 * 32, 0), SimError);
}

TEST(SsrUnit, CollectRequestsTagsLanes) {
  mem::AddressSpace memory;
  SsrUnit unit(memory);
  unit.write_cfg(0 * 32 + kRegBound0, 3);
  unit.write_cfg(0 * 32 + kRegStride0, 8);
  unit.write_cfg(0 * 32 + kRegRptr0, kTcdmBase);
  unit.write_cfg(2 * 32 + kRegBound0, 3);
  unit.write_cfg(2 * 32 + kRegStride0, 8);
  unit.write_cfg(2 * 32 + kRegRptr0, kTcdmBase + 256);
  std::vector<mem::TcdmRequest> reqs;
  std::vector<SsrUnit::RequestTag> tags;
  unit.collect_requests(reqs, tags);
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].port, mem::TcdmPort::kSsr0);
  EXPECT_EQ(reqs[1].port, mem::TcdmPort::kSsr2);
  EXPECT_EQ(tags[0].lane, 0u);
  EXPECT_EQ(tags[1].lane, 2u);
  EXPECT_FALSE(unit.all_idle());
}

}  // namespace
}  // namespace copift::ssr

#include "common/bits.hpp"

#include <gtest/gtest.h>

#include <random>

namespace copift {
namespace {

TEST(Bits, ExtractAndPlaceAreInverse) {
  std::mt19937 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t value = rng();
    const unsigned lo = rng() % 28;
    const unsigned width = 1 + rng() % (32 - lo);
    const std::uint32_t field = bits(value, lo, width);
    EXPECT_EQ(bits(place(field, lo, width), lo, width), field);
  }
}

TEST(Bits, SignExtendNegative) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x1FFFFF, 21), -1);
  EXPECT_EQ(sign_extend(0, 12), 0);
}

TEST(Bits, FitsSignedBoundaries) {
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
}

TEST(Bits, FitsUnsignedBoundaries) {
  EXPECT_TRUE(fits_unsigned(0, 5));
  EXPECT_TRUE(fits_unsigned(31, 5));
  EXPECT_FALSE(fits_unsigned(32, 5));
  EXPECT_FALSE(fits_unsigned(-1, 5));
}

TEST(Bits, Rotl32MatchesShiftOr) {
  std::mt19937 rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t v = rng();
    const unsigned s = 1 + rng() % 31;
    EXPECT_EQ(rotl32(v, s), (v << s) | (v >> (32 - s)));
  }
}

TEST(Bits, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 4), 12u);
}

TEST(Bits, BitCastRoundTrip) {
  const double d = -1234.5678;
  EXPECT_EQ(bit_cast<double>(bit_cast<std::uint64_t>(d)), d);
  const float f = 3.14f;
  EXPECT_EQ(bit_cast<float>(bit_cast<std::uint32_t>(f)), f);
}

TEST(Bits, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(32), 5u);
}

}  // namespace
}  // namespace copift

#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"

namespace copift::sim {
namespace {

TEST(Trace, DisabledByDefault) {
  Cluster cluster(rvasm::assemble("nop\nnop\necall\n"));
  cluster.run();
  EXPECT_TRUE(cluster.tracer().entries().empty());
}

TEST(Trace, RecordsRetiredInstructions) {
  Cluster cluster(rvasm::assemble("li a0, 1\nadd a1, a0, a0\necall\n"));
  cluster.tracer().set_enabled(true);
  cluster.run();
  const auto& entries = cluster.tracer().entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].instr.mnemonic, isa::Mnemonic::kAddi);
  EXPECT_EQ(entries[1].instr.mnemonic, isa::Mnemonic::kAdd);
  EXPECT_EQ(entries[2].instr.mnemonic, isa::Mnemonic::kEcall);
  EXPECT_LT(entries[0].cycle, entries[1].cycle);
  EXPECT_EQ(entries[0].unit, TraceUnit::kIntCore);
}

TEST(Trace, MarksFpssAndReplayEntries) {
  Cluster cluster(rvasm::assemble(R"(
  fcvt.d.w fa0, zero
  li t0, 3
  frep.o t0, 1
  fadd.d fa1, fa1, fa0
  csrr t1, fpss
  ecall
)"));
  cluster.tracer().set_enabled(true);
  cluster.run();
  unsigned fpss = 0;
  unsigned replay = 0;
  for (const auto& e : cluster.tracer().entries()) {
    if (e.unit == TraceUnit::kFpss) ++fpss;
    if (e.unit == TraceUnit::kFrepReplay) ++replay;
  }
  EXPECT_EQ(fpss, 2u);    // fcvt + first fadd iteration
  EXPECT_EQ(replay, 3u);  // remaining FREP iterations
}

TEST(Trace, DualIssueCyclesPositiveUnderFrep) {
  Cluster cluster(rvasm::assemble(R"(
  fcvt.d.w fa0, zero
  li t0, 49
  frep.o t0, 2
  fadd.d fa1, fa1, fa0
  fadd.d fa2, fa2, fa0
  li a1, 60
x:
  addi a2, a2, 1
  addi a1, a1, -1
  bnez a1, x
  csrr t1, fpss
  ecall
)"));
  cluster.tracer().set_enabled(true);
  cluster.run();
  EXPECT_GT(cluster.tracer().dual_issue_cycles(), 20u);
}

TEST(Trace, RenderContainsDisassembly) {
  Cluster cluster(rvasm::assemble("li a0, 5\necall\n"));
  cluster.tracer().set_enabled(true);
  cluster.run();
  const std::string text = cluster.tracer().render();
  EXPECT_NE(text.find("addi a0, zero, 5"), std::string::npos);
  EXPECT_NE(text.find("[int ]"), std::string::npos);
}

TEST(Trace, RangeFilter) {
  Cluster cluster(rvasm::assemble("nop\nnop\nnop\nnop\necall\n"));
  cluster.tracer().set_enabled(true);
  cluster.run();
  const std::string all = cluster.tracer().render();
  const std::string some = cluster.tracer().render(0, 1);
  EXPECT_LT(some.size(), all.size());
}

}  // namespace
}  // namespace copift::sim

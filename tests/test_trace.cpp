#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <sstream>
#include <string>

#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"
#include "sim/trace_export.hpp"
#include "workload/workload.hpp"

namespace copift::sim {
namespace {

// --- helpers ----------------------------------------------------------------

// Heap-allocated: Cluster's units hold pointers into sibling members, so it
// must not be moved after construction.
std::unique_ptr<Cluster> run_traced(const std::string& source) {
  auto cluster = std::make_unique<Cluster>(rvasm::assemble(source));
  cluster->tracer().set_enabled(true);
  cluster->run();
  return cluster;
}

struct UnitCoverage {
  std::uint64_t entries = 0;
  std::uint64_t stalls = 0;
};

/// Entries + stall annotations per issue-slot track (FREP replays issue on
/// the FPSS track).
void coverage(const Cluster& cluster, UnitCoverage& int_core, UnitCoverage& fpss) {
  for (const TraceEntry& e : cluster.tracer().entries()) {
    (e.unit == TraceUnit::kIntCore ? int_core : fpss).entries++;
  }
  for (const StallEvent& s : cluster.tracer().stalls()) {
    (s.unit == TraceUnit::kIntCore ? int_core : fpss).stalls++;
  }
}

/// The central invariant: every cycle of each unit is attributed exactly
/// once — as a retired instruction or as a stall/issue/idle annotation —
/// and the aggregate counters agree with the per-cycle trace.
void expect_full_attribution(const Cluster& cluster) {
  const ActivityCounters& c = cluster.counters();
  const std::uint64_t cycles = cluster.cycles();
  EXPECT_EQ(c.int_issue_cycles() + c.int_stall_cycles() + c.int_halt_cycles, cycles);
  EXPECT_EQ(c.fpss_issue_cycles() + c.fpss_stall_cycles() + c.fpss_idle, cycles);
  if (!cluster.tracer().enabled()) return;
  UnitCoverage ic, fp;
  coverage(cluster, ic, fp);
  EXPECT_EQ(ic.entries + ic.stalls, cycles);
  EXPECT_EQ(fp.entries + fp.stalls, cycles);
  EXPECT_EQ(ic.entries, c.int_retired);
  EXPECT_EQ(fp.entries, c.fp_retired);
  // Per-cause stall-event counts match the aggregate counters. Iterating
  // the taxonomy (rather than hand-listing fields) keeps this check
  // automatically complete when a cause is added.
  std::uint64_t per_cause[kNumStallCauses] = {};
  for (const StallEvent& s : cluster.tracer().stalls()) {
    ++per_cause[static_cast<unsigned>(s.cause)];
  }
  for (unsigned i = 0; i < kNumStallCauses; ++i) {
    const auto cause = static_cast<StallCause>(i);
    EXPECT_EQ(per_cause[i], stall_cause_counter_value(c, cause))
        << stall_cause_name(cause) << " vs " << stall_cause_counter_name(cause);
  }
}

/// Minimal recursive-descent JSON validator: accepts exactly the RFC 8259
/// grammar (minus number edge cases we never emit). Returns true iff the
/// whole string is one valid JSON value.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

// --- original tracer behaviour ----------------------------------------------

TEST(Trace, DisabledByDefault) {
  Cluster cluster(rvasm::assemble("nop\nnop\necall\n"));
  cluster.run();
  EXPECT_TRUE(cluster.tracer().entries().empty());
  EXPECT_TRUE(cluster.tracer().stalls().empty());
}

TEST(Trace, RecordsRetiredInstructions) {
  Cluster cluster(rvasm::assemble("li a0, 1\nadd a1, a0, a0\necall\n"));
  cluster.tracer().set_enabled(true);
  cluster.run();
  const auto& entries = cluster.tracer().entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].instr.mnemonic, isa::Mnemonic::kAddi);
  EXPECT_EQ(entries[1].instr.mnemonic, isa::Mnemonic::kAdd);
  EXPECT_EQ(entries[2].instr.mnemonic, isa::Mnemonic::kEcall);
  EXPECT_LT(entries[0].cycle, entries[1].cycle);
  EXPECT_EQ(entries[0].unit, TraceUnit::kIntCore);
}

TEST(Trace, MarksFpssAndReplayEntries) {
  const auto cluster = run_traced(R"(
  fcvt.d.w fa0, zero
  li t0, 3
  frep.o t0, 1
  fadd.d fa1, fa1, fa0
  csrr t1, fpss
  ecall
)");
  unsigned fpss = 0;
  unsigned replay = 0;
  for (const auto& e : cluster->tracer().entries()) {
    if (e.unit == TraceUnit::kFpss) ++fpss;
    if (e.unit == TraceUnit::kFrepReplay) ++replay;
  }
  EXPECT_EQ(fpss, 2u);    // fcvt + first fadd iteration
  EXPECT_EQ(replay, 3u);  // remaining FREP iterations
}

TEST(Trace, DualIssueCyclesPositiveUnderFrep) {
  const auto cluster = run_traced(R"(
  fcvt.d.w fa0, zero
  li t0, 49
  frep.o t0, 2
  fadd.d fa1, fa1, fa0
  fadd.d fa2, fa2, fa0
  li a1, 60
x:
  addi a2, a2, 1
  addi a1, a1, -1
  bnez a1, x
  csrr t1, fpss
  ecall
)");
  EXPECT_GT(cluster->tracer().dual_issue_cycles(), 20u);
}

TEST(Trace, RenderContainsDisassembly) {
  const auto cluster = run_traced("li a0, 5\necall\n");
  const std::string text = cluster->tracer().render();
  EXPECT_NE(text.find("addi a0, zero, 5"), std::string::npos);
  EXPECT_NE(text.find("[int ]"), std::string::npos);
}

TEST(Trace, RangeFilter) {
  const auto cluster = run_traced("nop\nnop\nnop\nnop\necall\n");
  const std::string all = cluster->tracer().render();
  const std::string some = cluster->tracer().render(0, 1);
  EXPECT_LT(some.size(), all.size());
}

// --- stall attribution: micro-programs with causes known by construction ----

// fcvt.d.w (cvt latency 2) feeds fadd #1, which feeds fadd #2 (add latency
// 3). The FPSS receives each fadd one cycle after its producer issued, so
// fadd #1 waits cvt_latency-1 = 1 cycle on fa0 and fadd #2 waits
// add_latency-1 = 2 cycles on fa1: exactly 3 fp/raw stall cycles.
TEST(StallAttribution, BackToBackFpRawExactCounts) {
  const auto cluster = run_traced(R"(
  fcvt.d.w fa0, zero
  fadd.d fa1, fa0, fa0
  fadd.d fa2, fa1, fa1
  csrr t0, fpss
  ecall
)");
  const ActivityCounters& c = cluster->counters();
  EXPECT_EQ(c.fpss_stall_raw, 3u);
  EXPECT_EQ(c.fpss_stall_ssr, 0u);
  EXPECT_EQ(c.fpss_stall_struct, 0u);
  EXPECT_EQ(c.int_offloads, 3u);  // fcvt + 2 fadd handed to the FPSS FIFO
  EXPECT_GT(c.stall_barrier, 0u);  // csrr fpss drains the in-flight adds
  expect_full_attribution(*cluster);
}

// Two independent divs: the iterative divider is busy for div_latency
// cycles, so the second div stalls exactly div_latency-1 cycles (it arrives
// one cycle after the first issued).
TEST(StallAttribution, DividerBusyExactCounts) {
  const auto cluster = run_traced(R"(
  li a0, 100
  li a1, 7
  div t0, a0, a1
  div t1, a0, a1
  ecall
)");
  const SimParams params{};
  EXPECT_EQ(cluster->counters().stall_div_busy,
            static_cast<std::uint64_t>(params.div_latency) - 1);
  EXPECT_EQ(cluster->counters().stall_raw, 0u);
  expect_full_attribution(*cluster);
}

// fcvt.w.d writes the *integer* register file through the FPSS writeback
// queue; the dependent add observes int/raw stalls until the result drains
// back over the shared write port (offload + cvt latency + drain = 3 cycles
// at default latencies). The second fcvt also waits 1 cycle on fa0 (fp/raw).
TEST(StallAttribution, IntRawOnFpssWritebackExactCounts) {
  const auto cluster = run_traced(R"(
  fcvt.d.w fa0, zero
  fcvt.w.d t0, fa0
  add t1, t0, t0
  ecall
)");
  const ActivityCounters& c = cluster->counters();
  EXPECT_EQ(c.stall_raw, 3u);
  EXPECT_EQ(c.fpss_stall_raw, 1u);
  EXPECT_EQ(c.int_offloads, 2u);
  expect_full_attribution(*cluster);
}

// FREP with a self-dependent body: the first fadd issues from the FIFO, the
// 3 replays issue from the sequencer, and every replay waits add_latency-1 =
// 2 cycles on the accumulator (fa1 RAW): 6 fp/raw stalls, 1 cfg cycle for
// the frep.o configuration entry, 3 replays.
TEST(StallAttribution, FrepReplayExactCounts) {
  const auto cluster = run_traced(R"(
  fcvt.d.w fa0, zero
  li t0, 3
  frep.o t0, 1
  fadd.d fa1, fa1, fa0
  csrr t1, fpss
  ecall
)");
  const ActivityCounters& c = cluster->counters();
  EXPECT_EQ(c.frep_replays, 3u);
  EXPECT_EQ(c.fpss_cfg_cycles, 1u);
  EXPECT_EQ(c.fpss_stall_raw, 6u);
  expect_full_attribution(*cluster);
}

// The six paper kernels: per-unit stall + issue + idle cycles must sum to
// total simulated cycles, tracing must not perturb timing (bit-identical
// counters with the tracer on and off), and the cycle counts are pinned so
// an accidental timing change in the introspection layer fails loudly.
TEST(StallAttribution, PaperKernelsFullAttributionAndTraceTransparency) {
  const struct {
    const char* name;
    std::uint64_t cycles;  // n=768, default block/seed, COPIFT variant
  } kKernels[] = {
      {"exp", 10819},  {"log", 12498},          {"poly_lcg", 9637},
      {"pi_lcg", 7711}, {"poly_xoshiro128p", 18782}, {"pi_xoshiro128p", 18497},
  };
  for (const auto& [name, pinned_cycles] : kKernels) {
    SCOPED_TRACE(name);
    const auto wl = workload::WorkloadRegistry::instance().at(name);
    auto cfg = wl->default_config();
    cfg.n = 768;
    const auto kernel = wl->instantiate(wl->default_variant(), cfg);
    const auto program = kernels::assemble_kernel(kernel);

    Cluster plain(program);
    kernels::populate_inputs(plain, kernel);
    plain.run();

    Cluster traced(program);
    traced.tracer().set_enabled(true);
    kernels::populate_inputs(traced, kernel);
    traced.run();

    EXPECT_EQ(plain.cycles(), pinned_cycles);
    EXPECT_EQ(traced.cycles(), plain.cycles());
    const ActivityCounters& a = plain.counters();
    const ActivityCounters& b = traced.counters();
    EXPECT_EQ(a.int_retired, b.int_retired);
    EXPECT_EQ(a.fp_retired, b.fp_retired);
    EXPECT_EQ(a.frep_replays, b.frep_replays);
    EXPECT_EQ(a.int_stall_cycles(), b.int_stall_cycles());
    EXPECT_EQ(a.fpss_stall_cycles(), b.fpss_stall_cycles());
    EXPECT_TRUE(plain.tracer().entries().empty());
    expect_full_attribution(plain);
    expect_full_attribution(traced);
    EXPECT_GT(traced.tracer().dual_issue_cycles(), 0u);
  }
}

// --- exporters ---------------------------------------------------------------

TEST(TraceExport, ChromeTraceIsValidJsonWithUnitTracks) {
  const auto cluster = run_traced(R"(
  fcvt.d.w fa0, zero
  fadd.d fa1, fa0, fa0
  csrr t0, fpss
  ecall
)");
  std::ostringstream os;
  write_chrome_trace(os, cluster->tracer());
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"int core\""), std::string::npos);
  EXPECT_NE(json.find("\"fpss\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"retire\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stall\""), std::string::npos);
  EXPECT_NE(json.find("fp/raw"), std::string::npos);
}

TEST(TraceExport, ChromeTraceRequiresEnabledTracer) {
  Cluster cluster(rvasm::assemble("nop\necall\n"));
  cluster.run();
  std::ostringstream os;
  EXPECT_THROW(write_chrome_trace(os, cluster.tracer()), Error);
}

TEST(TraceExport, StallSlicesMergeAdjacentCycles) {
  // div back-to-back produces a 19-cycle run of int/div-busy annotations;
  // the exporter must merge it into a single slice with dur=19.
  const auto cluster = run_traced("li a0, 100\nli a1, 7\ndiv t0, a0, a1\ndiv t1, a0, a1\necall\n");
  std::ostringstream os;
  write_chrome_trace(os, cluster->tracer());
  const SimParams params{};
  const std::string expect = "\"dur\":" + std::to_string(params.div_latency - 1) +
                             ",\"cat\":\"stall\",\"name\":\"int/div-busy\"";
  EXPECT_NE(os.str().find(expect), std::string::npos) << os.str();
}

TEST(TraceExport, ReportContainsOccupancyHistogramAndHotPcs) {
  const auto cluster = run_traced(R"(
  fcvt.d.w fa0, zero
  li t0, 19
  frep.o t0, 1
  fmul.d fa1, fa0, fa0
  csrr t1, fpss
  ecall
)");
  const std::string report = render_report(cluster->tracer(), cluster->counters());
  EXPECT_NE(report.find("pipeline report"), std::string::npos);
  EXPECT_NE(report.find("int core"), std::string::npos);
  EXPECT_NE(report.find("fpss"), std::string::npos);
  EXPECT_NE(report.find("stall breakdown"), std::string::npos);
  EXPECT_NE(report.find("dual-issue cycles"), std::string::npos);
  EXPECT_NE(report.find("hottest PCs"), std::string::npos);
  EXPECT_NE(report.find("frep.o"), std::string::npos);  // hottest-PC disassembly
}

TEST(TraceExport, ReportDegradesGracefullyWithoutTracing) {
  Cluster cluster(rvasm::assemble("nop\necall\n"));
  cluster.run();
  const std::string report = render_report(cluster.tracer(), cluster.counters());
  EXPECT_NE(report.find("pipeline report"), std::string::npos);
  EXPECT_NE(report.find("need tracing"), std::string::npos);
  EXPECT_EQ(report.find("hottest PCs"), std::string::npos);
}

TEST(Taxonomy, EveryCauseHasNameCounterAndLegendEntry) {
  const std::string legend = stall_taxonomy_legend();
  for (unsigned i = 0; i < kNumStallCauses; ++i) {
    const auto cause = static_cast<StallCause>(i);
    EXPECT_STRNE(stall_cause_name(cause), "");
    EXPECT_STRNE(stall_cause_counter_name(cause), "");
    EXPECT_NE(legend.find(stall_cause_name(cause)), std::string::npos);
    EXPECT_NE(legend.find(stall_cause_counter_name(cause)), std::string::npos);
  }
}

}  // namespace
}  // namespace copift::sim

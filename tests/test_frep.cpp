#include "frep/frep.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace copift::frep {
namespace {

FrepEntry fp_entry(isa::Mnemonic m, std::uint64_t epoch = 0) {
  FrepEntry e;
  e.instr.mnemonic = m;
  e.epoch = epoch;
  return e;
}

TEST(Frep, OuterLoopReplaysBody) {
  FrepSequencer seq(16);
  seq.configure(/*body=*/2, /*extra_reps=*/2, FrepSequencer::Mode::kOuter);
  EXPECT_TRUE(seq.recording());
  EXPECT_EQ(seq.pending_replays(), 4u);
  seq.record(fp_entry(isa::Mnemonic::kFaddD, 7));
  EXPECT_TRUE(seq.recording());
  seq.record(fp_entry(isa::Mnemonic::kFmulD, 7));
  EXPECT_FALSE(seq.recording());
  ASSERT_TRUE(seq.replaying());
  // Two more body iterations: add, mul, add, mul.
  EXPECT_EQ(seq.current().instr.mnemonic, isa::Mnemonic::kFaddD);
  EXPECT_EQ(seq.current().epoch, 7u);
  seq.advance();
  EXPECT_EQ(seq.current().instr.mnemonic, isa::Mnemonic::kFmulD);
  seq.advance();
  EXPECT_EQ(seq.current().instr.mnemonic, isa::Mnemonic::kFaddD);
  seq.advance();
  EXPECT_EQ(seq.pending_replays(), 1u);
  seq.advance();
  EXPECT_TRUE(seq.idle());
  EXPECT_EQ(seq.pending_replays(), 0u);
}

TEST(Frep, SingleIterationLoopIsIdle) {
  FrepSequencer seq(16);
  seq.configure(3, 0, FrepSequencer::Mode::kOuter);
  EXPECT_TRUE(seq.idle());  // nothing to replay
  EXPECT_EQ(seq.pending_replays(), 0u);
}

TEST(Frep, InnerModeRepeatsEachInstruction) {
  FrepSequencer seq(16);
  seq.configure(2, 1, FrepSequencer::Mode::kInner);
  seq.record(fp_entry(isa::Mnemonic::kFaddD));
  ASSERT_TRUE(seq.replaying());
  EXPECT_EQ(seq.current().instr.mnemonic, isa::Mnemonic::kFaddD);
  seq.advance();
  EXPECT_TRUE(seq.recording());
  seq.record(fp_entry(isa::Mnemonic::kFmulD));
  ASSERT_TRUE(seq.replaying());
  EXPECT_EQ(seq.current().instr.mnemonic, isa::Mnemonic::kFmulD);
  seq.advance();
  EXPECT_TRUE(seq.idle());
}

TEST(Frep, BodyTooLargeThrows) {
  FrepSequencer seq(4);
  EXPECT_THROW(seq.configure(5, 1, FrepSequencer::Mode::kOuter), SimError);
}

TEST(Frep, EmptyBodyThrows) {
  FrepSequencer seq(4);
  EXPECT_THROW(seq.configure(0, 1, FrepSequencer::Mode::kOuter), SimError);
}

TEST(Frep, NestedConfigureThrows) {
  FrepSequencer seq(16);
  seq.configure(1, 3, FrepSequencer::Mode::kOuter);
  seq.record(fp_entry(isa::Mnemonic::kFaddD));
  ASSERT_TRUE(seq.replaying());
  EXPECT_THROW(seq.configure(1, 1, FrepSequencer::Mode::kOuter), SimError);
}

TEST(Frep, RejectsNonFpInstruction) {
  FrepSequencer seq(16);
  seq.configure(1, 1, FrepSequencer::Mode::kOuter);
  EXPECT_THROW(seq.record(fp_entry(isa::Mnemonic::kAdd)), SimError);
}

TEST(Frep, RejectsFpLoadStoreInBody) {
  // Paper Step 6/7: FP loads must be mapped to SSRs before FREP mapping.
  FrepSequencer seq(16);
  seq.configure(1, 1, FrepSequencer::Mode::kOuter);
  EXPECT_THROW(seq.record(fp_entry(isa::Mnemonic::kFld)), SimError);
  seq = FrepSequencer(16);
  seq.configure(1, 1, FrepSequencer::Mode::kOuter);
  EXPECT_THROW(seq.record(fp_entry(isa::Mnemonic::kFsd)), SimError);
}

TEST(Frep, LargeRepetitionCount) {
  FrepSequencer seq(16);
  seq.configure(2, 9999, FrepSequencer::Mode::kOuter);
  seq.record(fp_entry(isa::Mnemonic::kFaddD));
  seq.record(fp_entry(isa::Mnemonic::kFmulD));
  EXPECT_EQ(seq.pending_replays(), 2u * 9999u);
  std::uint64_t n = 0;
  while (seq.replaying()) {
    seq.advance();
    ++n;
  }
  EXPECT_EQ(n, 2u * 9999u);
}

}  // namespace
}  // namespace copift::frep

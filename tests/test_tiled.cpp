// Tiled (DRAM + DMA double-buffering) correctness tests: workloads whose
// arrays exceed the 128 KiB TCDM by 4x-16x must still verify bit-exactly
// against the host golden reference at every core count, and the generated
// tile loop must actually overlap DMA with compute (the whole point of
// double buffering). See workload/tiled_buffer.hpp for the codegen contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/layout.hpp"
#include "kernels/kernels.hpp"
#include "kernels/runner.hpp"
#include "sim/params.hpp"
#include "workload/workload.hpp"

namespace copift::kernels {
namespace {

using workload::Variant;
using workload::WorkloadConfig;

sim::SimParams dram_params(std::uint32_t cores) {
  sim::SimParams params;
  params.num_cores = cores;
  params.dram_enabled = true;
  return params;
}

/// Cycles during which the DMA engine moved data while the cores were NOT
/// stalled waiting on it — positive iff the double buffering overlapped
/// transfers with compute instead of serializing them.
std::int64_t overlap_cycles(const KernelRun& run) {
  return static_cast<std::int64_t>(run.total.dma_busy_cycles) -
         static_cast<std::int64_t>(run.total.stall_dma_wait + run.total.stall_dma_dram);
}

KernelRun run_tiled(const char* name, Variant variant, std::uint32_t n,
                    std::uint32_t tile, std::uint32_t cores,
                    std::uint32_t block = 32) {
  WorkloadConfig cfg;
  cfg.n = n;
  cfg.tile = tile;
  cfg.cores = cores;
  cfg.block = block;
  const auto wl = workload::WorkloadRegistry::instance().at(name);
  return run_kernel(wl->instantiate(variant, cfg), dram_params(cores));
}

// n = 65536 doubles: x + y = 1 MiB of array data, 8x the whole TCDM.
// run_kernel verifies bit-exactly against the host std::fma reference.
TEST(TiledAxpy, BitExactAt4xTcdmEveryCoreCount) {
  for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
    for (const std::uint32_t cores : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(workload::variant_name(variant)) +
                   " cores=" + std::to_string(cores));
      const auto run = run_tiled("axpy", variant, 65536, 1024, cores);
      EXPECT_TRUE(run.verified);
      EXPECT_EQ(run.total.dma_bytes, 3u * 65536u * 8u);  // x in, y in, y out
    }
  }
}

TEST(TiledAxpy, BitExactAt16xTcdm) {
  const auto run = run_tiled("axpy", Variant::kCopift, 262144, 2048, 4);
  EXPECT_TRUE(run.verified);
}

// The overlap property: with many tiles in flight the engine must be busy
// while the cores compute, not only while they block in dmwait.
TEST(TiledAxpy, DmaOverlapsCompute) {
  for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
    SCOPED_TRACE(workload::variant_name(variant));
    const auto run = run_tiled("axpy", variant, 65536, 1024, 1);
    EXPECT_GT(overlap_cycles(run), 0);
  }
}

// Tiling must also work without the DRAM timing model (flat DMA latency):
// the data placement is the same, only the transfer timing changes.
TEST(TiledAxpy, BitExactWithDramTimingDisabled) {
  WorkloadConfig cfg;
  cfg.n = 65536;
  cfg.tile = 1024;
  cfg.cores = 2;
  const auto wl = workload::WorkloadRegistry::instance().at("axpy");
  sim::SimParams params;
  params.num_cores = 2;
  const auto run = run_kernel(wl->instantiate(Variant::kCopift, cfg), params);
  EXPECT_TRUE(run.verified);
}

// Skip-ahead must not change tiled results: same cycles, same verification.
TEST(TiledAxpy, SkipAheadInvariant) {
  WorkloadConfig cfg;
  cfg.n = 65536;
  cfg.tile = 1024;
  cfg.cores = 1;
  const auto wl = workload::WorkloadRegistry::instance().at("axpy");
  auto params = dram_params(1);
  const auto fast = run_kernel(wl->instantiate(Variant::kCopift, cfg), params);
  params.skip_ahead = false;
  const auto slow = run_kernel(wl->instantiate(Variant::kCopift, cfg), params);
  EXPECT_TRUE(fast.verified);
  EXPECT_TRUE(slow.verified);
  EXPECT_EQ(fast.result.cycles, slow.result.cycles);
  EXPECT_EQ(fast.total.stall_dma_wait, slow.total.stall_dma_wait);
  EXPECT_EQ(fast.total.stall_dma_dram, slow.total.stall_dma_dram);
}

// exp runs the full three-phase COPIFT pipeline (FREP + SSR + integer table
// lookup + copift.barrier) inside every tile; the table, constants and slot
// arena stay TCDM-resident while x/y stream from/to DRAM.
TEST(TiledExp, BitExactAt4xTcdmEveryCoreCount) {
  for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
    for (const std::uint32_t cores : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::string(workload::variant_name(variant)) +
                   " cores=" + std::to_string(cores));
      const auto run = run_tiled("exp", variant, 65536, 1024, cores, /*block=*/64);
      EXPECT_TRUE(run.verified);
      EXPECT_EQ(run.total.dma_bytes, 2u * 65536u * 8u);  // x in, y out
    }
  }
}

TEST(TiledExp, BitExactAt16xTcdm) {
  const auto run = run_tiled("exp", Variant::kCopift, 262144, 2048, 4, /*block=*/64);
  EXPECT_TRUE(run.verified);
}

TEST(TiledExp, DmaOverlapsCompute) {
  for (const Variant variant : {Variant::kBaseline, Variant::kCopift}) {
    SCOPED_TRACE(workload::variant_name(variant));
    const auto run = run_tiled("exp", variant, 65536, 1024, 1, /*block=*/64);
    EXPECT_GT(overlap_cycles(run), 0);
  }
}

// Untileable configurations must be rejected with value-carrying messages.
TEST(TiledValidation, RejectsBadTilings) {
  const auto expect_error = [](WorkloadConfig cfg, const char* fragment) {
    try {
      (void)workload::generate("axpy", Variant::kCopift, cfg);
      FAIL() << "expected ConfigError mentioning '" << fragment << "'";
    } catch (const workload::ConfigError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos) << e.what();
    }
  };
  WorkloadConfig cfg;
  cfg.n = 65536;
  cfg.tile = 1000;  // does not divide n
  expect_error(cfg, "does not divide n=65536");
  cfg.tile = 65536;  // single tile: nothing to double-buffer
  expect_error(cfg, "fewer than 2 tiles");
  cfg.tile = 1024;
  cfg.cores = 3;  // does not divide tile... but first: 3 doesn't divide 1024
  expect_error(cfg, "does not divide tile=1024");
  cfg.cores = 1;
  cfg.tile = 8192;  // 2 x 8192 x 16 bytes = 256 KiB of buffers > TCDM
  expect_error(cfg, "TCDM");
  // Workloads without a tiled generator reject tile > 0 outright.
  cfg = WorkloadConfig{};
  cfg.n = 1920;
  cfg.block = 96;
  cfg.tile = 960;
  try {
    (void)workload::generate("pi_lcg", Variant::kCopift, cfg);
    FAIL() << "expected ConfigError";
  } catch (const workload::ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("no tiled"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace copift::kernels

#include "energy/energy.hpp"

#include <gtest/gtest.h>

namespace copift::energy {
namespace {

TEST(Energy, ZeroActivityIsConstantPowerOnly) {
  sim::ActivityCounters c;
  c.cycles = 1000;
  const EnergyModel model;
  const EnergyReport r = model.evaluate(c);
  EXPECT_DOUBLE_EQ(r.constant_pj, (model.params().base_pj_per_cycle +
                                   model.params().dma_idle_pj_per_cycle) *
                                      1000);
  EXPECT_DOUBLE_EQ(r.total_pj, r.constant_pj);
  EXPECT_NEAR(r.power_mw(), model.params().base_pj_per_cycle +
                                model.params().dma_idle_pj_per_cycle,
              1e-9);
}

TEST(Energy, ComponentsSumToTotal) {
  sim::ActivityCounters c;
  c.cycles = 500;
  c.int_retired = 400;
  c.int_alu = 300;
  c.int_mul = 50;
  c.fp_retired = 200;
  c.fp_fma = 100;
  c.fp_add = 50;
  c.tcdm_reads = 80;
  c.tcdm_writes = 40;
  c.l0_hits = 400;
  c.l0_refills = 20;
  c.ssr_elements = 60;
  c.dma_busy_cycles = 10;
  c.dma_bytes = 640;
  const EnergyReport r = EnergyModel().evaluate(c);
  EXPECT_NEAR(r.total_pj,
              r.constant_pj + r.int_core_pj + r.fpss_pj + r.memory_pj + r.icache_pj + r.dma_pj,
              1e-9);
  EXPECT_GT(r.int_core_pj, 0);
  EXPECT_GT(r.fpss_pj, 0);
  EXPECT_GT(r.memory_pj, 0);
  EXPECT_GT(r.icache_pj, 0);
  EXPECT_GT(r.dma_pj, 0);
}

TEST(Energy, MonotonicInActivity) {
  sim::ActivityCounters lo;
  lo.cycles = 100;
  lo.fp_fma = 10;
  sim::ActivityCounters hi = lo;
  hi.fp_fma = 50;
  const EnergyModel model;
  EXPECT_GT(model.evaluate(hi).total_pj, model.evaluate(lo).total_pj);
}

TEST(Energy, PowerTimesTimeEqualsEnergy) {
  sim::ActivityCounters c;
  c.cycles = 12345;
  c.int_retired = 9000;
  c.int_alu = 8000;
  const EnergyReport r = EnergyModel().evaluate(c);
  // P[mW] * t[ns] == E[pJ]; t == cycles at 1 GHz.
  EXPECT_NEAR(r.power_mw() * static_cast<double>(c.cycles), r.total_pj, 1e-6);
  EXPECT_NEAR(r.energy_nj() * 1000.0, r.total_pj, 1e-9);
}

TEST(Energy, CustomParamsRespected) {
  EnergyParams p;
  p.base_pj_per_cycle = 100.0;
  p.dma_idle_pj_per_cycle = 0.0;
  sim::ActivityCounters c;
  c.cycles = 10;
  EXPECT_DOUBLE_EQ(EnergyModel(p).evaluate(c).total_pj, 1000.0);
}

TEST(Energy, CalibrationLandsInPaperBand) {
  // A synthetic baseline-like activity profile must land in the paper's
  // 37-42 mW band (Fig. 2b).
  sim::ActivityCounters c;
  c.cycles = 100000;
  c.int_retired = 44000;
  c.int_alu = 30000;
  c.int_mul = 5000;
  c.fp_retired = 52000;
  c.fp_fma = 20000;
  c.fp_add = 12000;
  c.fp_mul = 12000;
  c.fp_cvt = 4000;
  c.fp_cmp = 4000;
  c.tcdm_reads = 20000;
  c.tcdm_writes = 16000;
  c.l0_hits = 85000;
  c.l0_refills = 12000;
  const double mw = EnergyModel().evaluate(c).power_mw();
  EXPECT_GT(mw, 36.0);
  EXPECT_LT(mw, 44.0);
}

}  // namespace
}  // namespace copift::energy

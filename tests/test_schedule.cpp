#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "rvasm/assembler.hpp"

namespace copift::core {
namespace {

Partition partition_of(const std::string& body, Dfg& g) {
  g = Dfg::build(rvasm::assemble(body).text);
  return partition(g);
}

TEST(Schedule, AdjacentPhasesDoubleBuffer) {
  Dfg g;
  const Partition p = partition_of(R"(
  addi a0, x0, 3
  fcvt.d.w fa0, a0
)", g);
  const PipelineSchedule s = plan_pipeline(p, g);
  ASSERT_EQ(s.buffers.size(), 1u);
  // Producer phase 0 -> consumer phase 1: distance 1 => 2 replicas.
  EXPECT_EQ(s.buffers[0].replicas, 2u);
  EXPECT_EQ(s.depth(), 1u);
}

TEST(Schedule, SkippedPhaseTripleBuffers) {
  // fp -> int -> fp with a value flowing directly from phase 0 to phase 2:
  // the paper's w buffer needs 3 replicas.
  Dfg g;
  const Partition p = partition_of(R"(
  fadd.d fa0, fa1, fa2
  fcvt.w.d a0, fa0
  addi a1, a0, 1
  fcvt.d.w fa3, a1
  fmul.d fa4, fa3, fa0
)", g);
  const PipelineSchedule s = plan_pipeline(p, g);
  ASSERT_EQ(p.phases.size(), 3u);
  unsigned max_replicas = 0;
  for (const auto& b : s.buffers) max_replicas = std::max(max_replicas, b.replicas);
  // fa0 flows phase 0 -> phase 2: 3 replicas (paper Section II-A Step 5).
  EXPECT_EQ(max_replicas, 3u);
}

TEST(Schedule, BlockAssignmentIsPipelined) {
  PipelineSchedule s;
  s.num_phases = 3;
  // Iteration j: phase p works on block j - p (paper Fig. 1g).
  EXPECT_EQ(s.block_for(0, 5), 5);
  EXPECT_EQ(s.block_for(1, 5), 4);
  EXPECT_EQ(s.block_for(2, 5), 3);
  EXPECT_LT(s.block_for(2, 1), 0);  // prologue: phase idle
}

TEST(Schedule, TcdmBytesScaleWithBlock) {
  PipelineSchedule s;
  s.num_phases = 2;
  BufferPlan b;
  b.bytes_per_element = 8;
  b.replicas = 2;
  s.buffers.push_back(b);
  s.io_bytes_per_element = 16;
  EXPECT_EQ(s.tcdm_bytes(10), 10u * (8 * 2 + 16));
  EXPECT_EQ(s.max_block(3200), 3200u / 32u);
}

TEST(Schedule, MaxBlockMatchesPaperScale) {
  // The exp kernel: per element, buffers ki (2x8), w (3x8), t (2x8) plus
  // x and y blocks (8 each): max block for a 6 KiB budget ~ 82.
  PipelineSchedule s;
  s.num_phases = 3;
  s.buffers = {
      {"ki", 0, 1, 8, 2},
      {"w", 0, 2, 8, 3},
      {"t", 1, 2, 8, 2},
  };
  s.io_bytes_per_element = 16;
  const auto bytes_per_elem = s.tcdm_bytes(1);
  EXPECT_EQ(bytes_per_elem, 8u * (2 + 3 + 2) + 16u);
  EXPECT_EQ(s.max_block(72 * 1024), 72u * 1024u / bytes_per_elem);
}

TEST(Schedule, SharedValueReadTwiceUsesOneBuffer) {
  // One produced value consumed twice in the same later phase: one buffer.
  Dfg g;
  const Partition p = partition_of(R"(
  addi a0, x0, 3
  fcvt.d.w fa0, a0
  fcvt.d.w fa1, a0
)", g);
  const PipelineSchedule s = plan_pipeline(p, g);
  EXPECT_EQ(s.buffers.size(), 1u);
}

TEST(Schedule, DumpListsBuffers) {
  Dfg g;
  const Partition p = partition_of("addi a0, x0, 1\nfcvt.d.w fa0, a0\n", g);
  const PipelineSchedule s = plan_pipeline(p, g);
  EXPECT_NE(s.dump().find("buffer"), std::string::npos);
}

}  // namespace
}  // namespace copift::core

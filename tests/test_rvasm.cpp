#include "rvasm/assembler.hpp"

#include <gtest/gtest.h>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/layout.hpp"
#include "isa/csr.hpp"

namespace copift::rvasm {
namespace {

using isa::Mnemonic;

Program asms(const std::string& src) { return assemble(src); }

TEST(Asm, EmptyProgram) {
  const Program p = asms("");
  EXPECT_TRUE(p.text.empty());
  EXPECT_EQ(p.entry, kTextBase);
}

TEST(Asm, SimpleInstructions) {
  const Program p = asms("addi a0, a1, 42\nadd s0, s1, s2\n");
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(p.text[0].mnemonic, Mnemonic::kAddi);
  EXPECT_EQ(p.text[0].rd, 10);
  EXPECT_EQ(p.text[0].imm, 42);
  EXPECT_EQ(p.text[1].mnemonic, Mnemonic::kAdd);
}

TEST(Asm, CommentsAndBlankLines) {
  const Program p = asms("# full comment\n\n  addi x1, x0, 1  # trailing\n");
  EXPECT_EQ(p.text.size(), 1u);
}

TEST(Asm, LabelsForwardAndBackward) {
  const Program p = asms(R"(
top:
  addi a0, a0, 1
  beq a0, a1, done
  j top
done:
  ecall
)");
  ASSERT_EQ(p.text.size(), 4u);
  // beq at index 1 -> done at index 3: offset +8
  EXPECT_EQ(p.text[1].imm, 8);
  // j at index 2 -> top at index 0: offset -8
  EXPECT_EQ(p.text[2].mnemonic, Mnemonic::kJal);
  EXPECT_EQ(p.text[2].imm, -8);
  EXPECT_EQ(p.symbol("top"), kTextBase);
  EXPECT_EQ(p.symbol("done"), kTextBase + 12);
}

TEST(Asm, LabelOnSameLineAsCode) {
  const Program p = asms("start: addi a0, a0, 1\n");
  EXPECT_EQ(p.symbol("start"), kTextBase);
  EXPECT_EQ(p.text.size(), 1u);
}

TEST(Asm, LiSmallExpandsToAddi) {
  const Program p = asms("li a0, -7\n");
  ASSERT_EQ(p.text.size(), 1u);
  EXPECT_EQ(p.text[0].mnemonic, Mnemonic::kAddi);
  EXPECT_EQ(p.text[0].imm, -7);
  EXPECT_EQ(p.text[0].rs1, 0);
}

TEST(Asm, LiLargeExpandsToLuiAddi) {
  const Program p = asms("li a0, 0x12345678\n");
  ASSERT_EQ(p.text.size(), 2u);
  EXPECT_EQ(p.text[0].mnemonic, Mnemonic::kLui);
  EXPECT_EQ(p.text[1].mnemonic, Mnemonic::kAddi);
  // Reconstruct the value.
  const std::uint32_t v = (static_cast<std::uint32_t>(p.text[0].imm) << 12) +
                          static_cast<std::uint32_t>(p.text[1].imm);
  EXPECT_EQ(v, 0x12345678u);
}

TEST(Asm, LiNegativeBitPattern) {
  // The low 12 bits are zero, so li expands to a lone lui.
  const Program p = asms("li s0, 0xff800000\n");
  ASSERT_EQ(p.text.size(), 1u);
  EXPECT_EQ(p.text[0].mnemonic, Mnemonic::kLui);
  EXPECT_EQ(static_cast<std::uint32_t>(p.text[0].imm) << 12, 0xff800000u);
}

TEST(Asm, LaResolvesDataSymbol) {
  const Program p = asms(R"(
.data
buf: .space 16
.text
  la a0, buf
)");
  ASSERT_EQ(p.text.size(), 2u);
  const std::uint32_t v = (static_cast<std::uint32_t>(p.text[0].imm) << 12) +
                          static_cast<std::uint32_t>(p.text[1].imm);
  EXPECT_EQ(v, kTcdmBase);
}

TEST(Asm, DataDirectives) {
  const Program p = asms(R"(
.data
w: .word 1, 2, 0xdeadbeef
.align 3
d: .dword 0x0102030405060708
f: .float 1.5
.align 3
dd: .double -2.5
z: .space 3
.align 2
end: .word 9
)");
  EXPECT_EQ(p.symbol("w"), kTcdmBase);
  EXPECT_EQ(p.symbol("d"), kTcdmBase + 16);  // aligned to 8
  const auto at = [&](std::uint32_t addr) { return addr - kTcdmBase; };
  EXPECT_EQ(p.data[at(p.symbol("w"))], 1);
  EXPECT_EQ(p.data[at(p.symbol("w")) + 4], 2);
  std::uint64_t dv = 0;
  for (int i = 7; i >= 0; --i) dv = (dv << 8) | p.data[at(p.symbol("d")) + i];
  EXPECT_EQ(dv, 0x0102030405060708ull);
  std::uint32_t fv = 0;
  for (int i = 3; i >= 0; --i) fv = (fv << 8) | p.data[at(p.symbol("f")) + i];
  EXPECT_EQ(copift::bit_cast<float>(fv), 1.5f);
  std::uint64_t ddv = 0;
  for (int i = 7; i >= 0; --i) ddv = (ddv << 8) | p.data[at(p.symbol("dd")) + i];
  EXPECT_EQ(copift::bit_cast<double>(ddv), -2.5);
  EXPECT_EQ(p.symbol("end") % 4, 0u);
}

TEST(Asm, DwordNegativeDoubleBitPattern) {
  // Regression: 64-bit patterns with the sign bit set must assemble.
  const Program p = asms(".data\nv: .dword 0xbfe0000000000000\n");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p.data[i];
  EXPECT_EQ(copift::bit_cast<double>(v), -0.5);
}

TEST(Asm, EquArithmetic) {
  const Program p = asms(".equ N, 8\n.equ M, N*4+2\naddi a0, x0, M\n");
  EXPECT_EQ(p.text[0].imm, 34);
}

TEST(Asm, MemOperandWithExpression) {
  const Program p = asms(".equ OFF, 8\nlw a0, OFF+4(sp)\n");
  EXPECT_EQ(p.text[0].imm, 12);
  EXPECT_EQ(p.text[0].rs1, 2);
}

TEST(Asm, HiLoRelocation) {
  const Program p = asms(R"(
.data
.space 0x234
var: .word 0
.text
  lui a0, %hi(var)
  addi a0, a0, %lo(var)
)");
  const std::uint32_t addr = p.symbol("var");
  const std::uint32_t v = (static_cast<std::uint32_t>(p.text[0].imm) << 12) +
                          static_cast<std::uint32_t>(p.text[1].imm);
  EXPECT_EQ(v, addr);
}

TEST(Asm, PseudoInstructions) {
  const Program p = asms(R"(
  nop
  mv a0, a1
  not a2, a3
  neg a4, a5
  seqz a6, a7
  snez t0, t1
  jr ra
  ret
  fmv.d fa0, fa1
  fneg.d fa2, fa3
  fabs.d fa4, fa5
  csrr t0, mcycle
  csrw region, t1
  csrsi ssr, 1
  csrci ssr, 1
)");
  EXPECT_EQ(p.text[0].mnemonic, Mnemonic::kAddi);   // nop
  EXPECT_EQ(p.text[1].mnemonic, Mnemonic::kAddi);   // mv
  EXPECT_EQ(p.text[2].mnemonic, Mnemonic::kXori);   // not
  EXPECT_EQ(p.text[3].mnemonic, Mnemonic::kSub);    // neg
  EXPECT_EQ(p.text[4].mnemonic, Mnemonic::kSltiu);  // seqz
  EXPECT_EQ(p.text[5].mnemonic, Mnemonic::kSltu);   // snez
  EXPECT_EQ(p.text[6].mnemonic, Mnemonic::kJalr);   // jr
  EXPECT_EQ(p.text[7].mnemonic, Mnemonic::kJalr);   // ret
  EXPECT_EQ(p.text[8].mnemonic, Mnemonic::kFsgnjD);
  EXPECT_EQ(p.text[9].mnemonic, Mnemonic::kFsgnjnD);
  EXPECT_EQ(p.text[10].mnemonic, Mnemonic::kFsgnjxD);
  EXPECT_EQ(p.text[11].mnemonic, Mnemonic::kCsrrs);
  EXPECT_EQ(p.text[11].imm, isa::kCsrMcycle);
  EXPECT_EQ(p.text[12].mnemonic, Mnemonic::kCsrrw);
  EXPECT_EQ(p.text[13].mnemonic, Mnemonic::kCsrrsi);
  EXPECT_EQ(p.text[13].imm, isa::kCsrSsr);
  EXPECT_EQ(p.text[14].mnemonic, Mnemonic::kCsrrci);
}

TEST(Asm, BranchPseudos) {
  const Program p = asms(R"(
x:
  beqz a0, x
  bnez a1, x
  bltz a2, x
  bgez a3, x
  bgtz a4, x
  blez a5, x
  bgt a0, a1, x
  ble a0, a1, x
)");
  EXPECT_EQ(p.text[0].mnemonic, Mnemonic::kBeq);
  EXPECT_EQ(p.text[1].mnemonic, Mnemonic::kBne);
  EXPECT_EQ(p.text[2].mnemonic, Mnemonic::kBlt);
  EXPECT_EQ(p.text[3].mnemonic, Mnemonic::kBge);
  EXPECT_EQ(p.text[4].mnemonic, Mnemonic::kBlt);  // swapped operands
  EXPECT_EQ(p.text[4].rs1, 0);
  EXPECT_EQ(p.text[6].mnemonic, Mnemonic::kBlt);
  EXPECT_EQ(p.text[6].rs1, 11);  // bgt swaps
  EXPECT_EQ(p.text[6].rs2, 10);
}

TEST(Asm, CustomExtensions) {
  const Program p = asms(R"(
  frep.o t0, 9
  frep.i t1, 2
  scfgwi a0, 61
  scfgri a1, 5
  dmsrc a2
  dmdst a3
  dmcpy a4, a5
  dmstat a6
  copift.barrier
  fcvt.d.wu.cop fa0, ft0
  flt.d.cop fa1, fa2, fa3
  fcvt.w.d.cop fa4, fa5
  feq.d.cop fa6, fa7, fs0
  fle.d.cop fs1, fs2, fs3
  fclass.d.cop ft1, ft2
)");
  EXPECT_EQ(p.text[0].mnemonic, Mnemonic::kFrepO);
  EXPECT_EQ(p.text[0].rs1, 5);
  EXPECT_EQ(p.text[0].imm, 9);
  EXPECT_EQ(p.text[2].mnemonic, Mnemonic::kScfgwi);
  EXPECT_EQ(p.text[2].imm, 61);
  EXPECT_EQ(p.text[8].mnemonic, Mnemonic::kCopiftBarrier);
  EXPECT_EQ(p.text[9].mnemonic, Mnemonic::kFcvtDWuCop);
  EXPECT_EQ(p.text[10].mnemonic, Mnemonic::kFltDCop);
}

TEST(Asm, DramSection) {
  const Program p = asms(R"(
.section .dram
big: .space 64
.text
  nop
)");
  EXPECT_EQ(p.symbol("big"), kDramBase);
  EXPECT_EQ(p.dram.size(), 64u);
}

TEST(Asm, EntryPointFromStart) {
  const Program p = asms("nop\n_start: ecall\n");
  EXPECT_EQ(p.entry, kTextBase + 4);
}

TEST(AsmErrors, UnknownMnemonic) {
  EXPECT_THROW(asms("frobnicate a0, a1\n"), AsmError);
}

TEST(AsmErrors, BadRegister) {
  EXPECT_THROW(asms("addi q0, a1, 0\n"), AsmError);
  EXPECT_THROW(asms("fadd.d a0, fa1, fa2\n"), AsmError);
}

TEST(AsmErrors, ImmediateOutOfRange) {
  EXPECT_THROW(asms("addi a0, a1, 5000\n"), AsmError);
  EXPECT_THROW(asms("slli a0, a1, 32\n"), AsmError);
}

TEST(AsmErrors, UndefinedSymbol) {
  EXPECT_THROW(asms("j nowhere\n"), AsmError);
}

TEST(AsmErrors, RedefinedLabel) {
  EXPECT_THROW(asms("x: nop\nx: nop\n"), AsmError);
}

TEST(AsmErrors, WrongOperandCount) {
  EXPECT_THROW(asms("add a0, a1\n"), AsmError);
  EXPECT_THROW(asms("ecall a0\n"), AsmError);
}

TEST(AsmErrors, LiWithLabelRejected) {
  EXPECT_THROW(asms("li a0, lbl\nlbl: nop\n"), AsmError);
}

TEST(AsmErrors, InstructionInDataSection) {
  EXPECT_THROW(asms(".data\naddi a0, a0, 1\n"), AsmError);
}

TEST(AsmProgram, TextIndexChecks) {
  const Program p = asms("nop\nnop\n");
  EXPECT_EQ(p.text_index(kTextBase + 4), 1u);
  EXPECT_THROW(p.text_index(kTextBase + 8), Error);
  EXPECT_THROW(p.text_index(kTextBase + 2), Error);
}

}  // namespace
}  // namespace copift::rvasm

// End-to-end integration tests: every kernel variant assembles, runs on the
// cluster, verifies bit-exactly against the golden references, and
// reproduces the paper's qualitative performance claims.
#include <gtest/gtest.h>

#include "kernels/runner.hpp"

namespace copift::kernels {
namespace {

struct Case {
  KernelId id;
  Variant variant;
  std::uint32_t n;
  std::uint32_t block;
  std::uint32_t seed;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string name = kernel_name(c.id);
  for (auto& ch : name) {
    if (ch == '-' || ch == '+') ch = '_';
  }
  return name + (c.variant == Variant::kBaseline ? "_base_" : "_copift_") +
         std::to_string(c.n) + "_b" + std::to_string(c.block) + "_s" +
         std::to_string(c.seed);
}

class KernelCase : public ::testing::TestWithParam<Case> {};

TEST_P(KernelCase, RunsAndVerifies) {
  const auto& c = GetParam();
  KernelConfig cfg;
  cfg.n = c.n;
  cfg.block = c.block;
  cfg.seed = c.seed;
  const KernelRun run = run_kernel(generate(c.id, c.variant, cfg));
  EXPECT_TRUE(run.verified);
  EXPECT_TRUE(run.result.halted);
  // Physical sanity: IPC in (0, 2], power positive and plausible.
  EXPECT_GT(run.ipc(), 0.0);
  EXPECT_LE(run.ipc(), 2.0);
  EXPECT_GT(run.power_mw(), 25.0);
  EXPECT_LT(run.power_mw(), 70.0);
  if (c.variant == Variant::kBaseline) {
    EXPECT_LE(run.ipc(), 1.0);  // single-issue bound
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const auto id : kAllKernels) {
    for (const auto v : {Variant::kBaseline, Variant::kCopift}) {
      cases.push_back({id, v, 256, 32, 42});
      cases.push_back({id, v, 512, 64, 1});
    }
    // Extra seeds for the Monte Carlo kernels (bit-exact hit counts).
    if (!is_transcendental(id)) {
      cases.push_back({id, Variant::kCopift, 384, 48, 1234567});
      cases.push_back({id, Variant::kBaseline, 384, 48, 1234567});
    } else {
      cases.push_back({id, Variant::kCopift, 384, 48, 99});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelCase, ::testing::ValuesIn(all_cases()),
                         case_name);

TEST(Integration, CopiftBeatsBaselineOnEveryKernel) {
  KernelConfig cfg;
  cfg.n = 768;
  cfg.block = 96;
  for (const auto id : kAllKernels) {
    const auto base = run_kernel(generate(id, Variant::kBaseline, cfg));
    const auto cop = run_kernel(generate(id, Variant::kCopift, cfg));
    EXPECT_LT(cop.region.cycles, base.region.cycles) << kernel_name(id);
    EXPECT_GT(cop.ipc(), 1.0) << kernel_name(id);  // sustained dual-issue
  }
}

TEST(Integration, CopiftSavesEnergyOnEveryKernel) {
  KernelConfig cfg;
  cfg.n = 768;
  cfg.block = 96;
  for (const auto id : kAllKernels) {
    const auto base = run_kernel(generate(id, Variant::kBaseline, cfg));
    const auto cop = run_kernel(generate(id, Variant::kCopift, cfg));
    EXPECT_LT(cop.energy_nj(), base.energy_nj()) << kernel_name(id);
    // Power increase stays within the paper's bound (max 1.17x).
    EXPECT_LT(cop.power_mw() / base.power_mw(), 1.20) << kernel_name(id);
    EXPECT_GE(cop.power_mw() / base.power_mw(), 0.97) << kernel_name(id);
  }
}

TEST(Integration, SteadyStateMetricsMatchPaperShape) {
  KernelConfig cfg;
  cfg.block = 96;
  // exp: the paper's peak speedup (2.05x) and peak energy saving (1.93x).
  const auto exp = steady_metrics(KernelId::kExp, Variant::kCopift, cfg, 960, 1920);
  const auto exp_base = steady_metrics(KernelId::kExp, Variant::kBaseline, cfg, 960, 1920);
  const double exp_speedup = exp_base.cycles_per_item / exp.cycles_per_item;
  EXPECT_GT(exp_speedup, 1.7);
  EXPECT_LT(exp_speedup, 2.3);
  EXPECT_GT(exp.ipc, 1.5);   // paper: 1.63
  EXPECT_LT(exp_base.ipc, 1.0);
  const double exp_energy =
      exp_base.energy_pj_per_item / exp.energy_pj_per_item;
  EXPECT_GT(exp_energy, 1.4);
}

TEST(Integration, RegionDeltasAreConsistent) {
  KernelConfig cfg;
  cfg.n = 256;
  cfg.block = 32;
  const auto run = run_kernel(generate(KernelId::kPiLcg, Variant::kCopift, cfg));
  EXPECT_LE(run.region.cycles, run.total.cycles);
  EXPECT_LE(run.region.retired(), run.total.retired());
  EXPECT_EQ(run.region.retired(), run.region.int_retired + run.region.fp_retired);
  EXPECT_GT(run.region.frep_replays, 0u);
}

TEST(Integration, SeedChangesResultsButStaysVerified) {
  KernelConfig cfg;
  cfg.n = 256;
  cfg.block = 32;
  for (std::uint32_t seed : {3u, 17u, 909u}) {
    cfg.seed = seed;
    const auto run = run_kernel(generate(KernelId::kPolyXoshiro, Variant::kCopift, cfg));
    EXPECT_TRUE(run.verified);
  }
}

TEST(Integration, LargerBlocksAmortizeOverheads) {
  // Fig. 3's key trend: for a large problem, a larger block size (up to the
  // sweet spot) yields higher IPC, because per-block SSR programming and
  // buffer switching amortize over more elements.
  KernelConfig small;
  small.n = 12288;
  small.block = 16;
  KernelConfig big;
  big.n = 12288;
  big.block = 96;
  const auto s = run_kernel(generate(KernelId::kPolyLcg, Variant::kCopift, small));
  const auto b = run_kernel(generate(KernelId::kPolyLcg, Variant::kCopift, big));
  EXPECT_GT(b.ipc(), s.ipc());
}

TEST(Integration, SmallProblemsFavorSmallBlocks) {
  // Fig. 3's complementary trend: small problems favor small blocks, whose
  // shorter prologue/epilogue dominates.
  KernelConfig small;
  small.n = 768;
  small.block = 16;
  KernelConfig big;
  big.n = 768;
  big.block = 192;
  const auto s = run_kernel(generate(KernelId::kPolyLcg, Variant::kCopift, small));
  const auto b = run_kernel(generate(KernelId::kPolyLcg, Variant::kCopift, big));
  EXPECT_GT(s.ipc(), b.ipc());
}

TEST(Integration, LargerProblemsRaiseIpc) {
  // Fig. 3: IPC increases with problem size at fixed block size.
  KernelConfig small;
  small.n = 192;
  small.block = 48;
  KernelConfig big;
  big.n = 3072;
  big.block = 48;
  const auto s = run_kernel(generate(KernelId::kPolyLcg, Variant::kCopift, small));
  const auto b = run_kernel(generate(KernelId::kPolyLcg, Variant::kCopift, big));
  EXPECT_GT(b.ipc(), s.ipc());
}

TEST(Integration, DmaActiveOnlyInTranscendentalKernels) {
  KernelConfig cfg;
  cfg.n = 256;
  cfg.block = 32;
  const auto exp = run_kernel(generate(KernelId::kExp, Variant::kBaseline, cfg));
  const auto mc = run_kernel(generate(KernelId::kPiLcg, Variant::kBaseline, cfg));
  EXPECT_GT(exp.total.dma_busy_cycles, 0u);
  EXPECT_EQ(mc.total.dma_busy_cycles, 0u);
}

TEST(Integration, BaselineThrashesL0CopiftIntLoopFits) {
  // Paper Section III-B: the COPIFT exp/log integer loops fit in the L0 I$.
  KernelConfig cfg;
  cfg.n = 768;
  cfg.block = 96;
  const auto base = run_kernel(generate(KernelId::kExp, Variant::kBaseline, cfg));
  const auto cop = run_kernel(generate(KernelId::kExp, Variant::kCopift, cfg));
  const double base_refill_rate =
      static_cast<double>(base.region.l0_refills) / static_cast<double>(base.region.cycles);
  const double cop_refill_rate =
      static_cast<double>(cop.region.l0_refills) / static_cast<double>(cop.region.cycles);
  EXPECT_GT(base_refill_rate, 5.0 * cop_refill_rate);
}

}  // namespace
}  // namespace copift::kernels

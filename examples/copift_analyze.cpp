// The COPIFT methodology as a library: apply Steps 1-6 of paper Section II-A
// to the exponential loop body of Fig. 1b and print every intermediate
// artifact — DFG with dependency types, phase partition, software-pipeline
// buffer plan, maximum block size, stream fusion and the analytical
// speedup estimates.
#include <cstdio>

#include "core/dfg.hpp"
#include "core/model.hpp"
#include "core/partition.hpp"
#include "core/schedule.hpp"
#include "core/streams.hpp"
#include "rvasm/assembler.hpp"

int main() {
  using namespace copift;
  using namespace copift::core;

  // Paper Fig. 1b: the compiled exp loop body (one element).
  const char* kBody = R"(
  fld fa3, 0(a3)
  fmul.d fa3, fs0, fa3
  fadd.d fa1, fa3, fs1
  fsd fa1, 0(t1)
  lw a0, 0(t1)
  andi a1, a0, 0x1f
  slli a1, a1, 3
  add a1, t0, a1
  lw a2, 0(a1)
  lw a1, 4(a1)
  slli a0, a0, 15
  sw a2, 0(t2)
  add a0, a0, a1
  sw a0, 4(t2)
  fsub.d fa2, fa1, fs1
  fsub.d fa3, fa3, fa2
  fmadd.d fa2, fs2, fa3, fs3
  fld fa0, 0(t2)
  fmadd.d fa4, fs4, fa3, fs5
  fmul.d fa1, fa3, fa3
  fmadd.d fa4, fa2, fa1, fa4
  fmul.d fa4, fa4, fa0
  fsd fa4, 0(a4)
)";

  std::printf("== Step 1: data-flow graph of the Fig. 1b loop body ==\n");
  const auto program = rvasm::assemble(kBody);
  const Dfg dfg = Dfg::build(program.text);
  std::printf("%s", dfg.dump().c_str());
  std::printf("nodes: %zu (%zu int, %zu FP), cross edges: %zu\n\n", dfg.nodes().size(),
              dfg.num_int_nodes(), dfg.num_fp_nodes(), dfg.cross_edges().size());

  std::printf("== Step 2: phase partition (min-cut with acyclic precedence) ==\n");
  const Partition part = partition(dfg);
  std::printf("%s\n", part.dump(dfg).c_str());

  std::printf("== Steps 4-5: tiling + software pipelining buffer plan ==\n");
  // x and y blocks stay resident per block: 16 B/element of I/O.
  const PipelineSchedule sched = plan_pipeline(part, dfg, /*io_bytes_per_element=*/16);
  std::printf("%s", sched.dump().c_str());
  std::printf("TCDM bytes per element: %llu\n",
              static_cast<unsigned long long>(sched.tcdm_bytes(1)));
  std::printf("max block for 96 KiB of TCDM: %llu elements\n\n",
              static_cast<unsigned long long>(sched.max_block(96 * 1024)));

  std::printf("== Step 6: stream fusion (paper Fig. 1i) ==\n");
  const std::uint32_t kB = 96 * 8;  // one block of doubles
  std::vector<AffineStream> streams;
  const auto mk = [&](const char* name, std::uint32_t base, StreamDir dir) {
    AffineStream s;
    s.name = name;
    s.dir = dir;
    s.base = base;
    s.bounds = {96, 1, 1, 1};
    s.strides = {8, 0, 0, 0};
    streams.push_back(s);
  };
  mk("x", 0x10000000, StreamDir::kRead);
  mk("w_read", 0x10010000, StreamDir::kRead);
  mk("t", 0x10010000 + kB, StreamDir::kRead);
  mk("ki", 0x10020000, StreamDir::kWrite);
  mk("w_write", 0x10020000 + kB, StreamDir::kWrite);
  mk("y", 0x10020000 + 2 * kB, StreamDir::kWrite);
  const FusionResult fused = fuse_streams(streams, 3);
  std::printf("6 logical streams fused onto %zu SSR lanes:\n", fused.lanes.size());
  for (std::size_t i = 0; i < fused.lanes.size(); ++i) {
    std::printf("  lane %zu: %-22s %u-D, %llu elements (%s)\n", i,
                fused.lanes[i].name.c_str(), fused.lanes[i].dims,
                static_cast<unsigned long long>(fused.lanes[i].total_elements()),
                fused.lanes[i].dir == StreamDir::kRead ? "read" : "write");
  }

  std::printf("\n== Analytical model (paper Eq. 1-3) ==\n");
  SpeedupModel model;
  model.base = count_mix(program.text);
  model.copift = {11, 10};  // the COPIFT exp implementation, per element
  std::printf("baseline mix: %llu int / %llu FP, TI = %.2f\n",
              static_cast<unsigned long long>(model.base.n_int),
              static_cast<unsigned long long>(model.base.n_fp),
              model.base.thread_imbalance());
  std::printf("expected speedup S'  = %.2f\n", model.s_prime());
  std::printf("base-only estimate S'' = %.2f\n", model.s_double_prime());
  std::printf("expected IPC I'      = %.2f\n", model.i_prime());
  return 0;
}

// Softmax: the paper's motivating workload (Section III-A notes that the
// exponential kernel is the main component of softmax, which consumes a
// considerable fraction of cycles in modern LLMs).
//
// Softmax is now a first-class registry workload (src/workloads/softmax.cpp):
// exponentiation, the denominator reduction and the normalizing division all
// run on the simulated cluster and verify bit-exactly. This example resolves
// it by name from the WorkloadRegistry — exactly how any out-of-tree
// workload is used — and then isolates the exp phase (via the "exp" registry
// entry, baseline vs COPIFT) to show where the dual-issue transformation
// pays off inside softmax.
#include <cstdio>

#include "kernels/runner.hpp"
#include "workload/workload.hpp"

int main() {
  using namespace copift;
  using workload::Variant;

  constexpr std::uint32_t kLogits = 1536;  // e.g. one attention row
  workload::WorkloadConfig cfg;
  cfg.n = kLogits;
  cfg.block = 96;
  cfg.seed = 2024;

  const auto& registry = workload::WorkloadRegistry::instance();

  std::printf("Softmax over %u logits, fully on the simulated cluster\n\n", kLogits);
  const auto softmax = registry.at("softmax");
  const auto run = kernels::run_kernel(softmax->instantiate(softmax->default_variant(), cfg));
  std::printf("%-14s %10s %8s %10s %12s\n", "workload", "cycles", "IPC", "power mW",
              "energy nJ");
  std::printf("%-14s %10llu %8.2f %10.1f %12.1f  (verified: %s)\n", "softmax",
              static_cast<unsigned long long>(run.region.cycles), run.ipc(), run.power_mw(),
              run.energy_nj(), run.verified ? "bit-exact" : "no");

  std::printf("\nThe exp phase dominates; baseline vs COPIFT on the same logits:\n");
  const auto exp = registry.at("exp");
  kernels::KernelRun runs[2];
  for (const auto variant : {Variant::kBaseline, Variant::kCopift}) {
    runs[variant == Variant::kCopift] = kernels::run_kernel(exp->instantiate(variant, cfg));
  }
  const auto& base = runs[0];
  const auto& cop = runs[1];
  std::printf("%-14s %10llu %8.2f %10.1f %12.1f\n", "exp baseline",
              static_cast<unsigned long long>(base.region.cycles), base.ipc(),
              base.power_mw(), base.energy_nj());
  std::printf("%-14s %10llu %8.2f %10.1f %12.1f\n", "exp COPIFT",
              static_cast<unsigned long long>(cop.region.cycles), cop.ipc(), cop.power_mw(),
              cop.energy_nj());
  std::printf("\nexp-phase speedup: %.2fx, energy saving: %.2fx\n",
              static_cast<double>(base.region.cycles) / cop.region.cycles,
              base.energy_nj() / cop.energy_nj());
  return 0;
}

// Softmax: the paper's motivating workload (Section III-A notes that the
// exponential kernel is the main component of softmax, which consumes a
// considerable fraction of cycles in modern LLMs).
//
// This example runs the paper's exp kernel (baseline and COPIFT) over a
// vector of logits on the simulated cluster, then normalizes on the host,
// comparing cycles and energy for the attention-style softmax body.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/bits.hpp"
#include "kernels/glibc_math.hpp"
#include "kernels/runner.hpp"

int main() {
  using namespace copift;
  using namespace copift::kernels;

  constexpr std::uint32_t kLogits = 1536;  // e.g. one attention row
  KernelConfig cfg;
  cfg.n = kLogits;
  cfg.block = 96;
  cfg.seed = 2024;

  std::printf("Softmax over %u logits (exp on the cluster, normalize on host)\n\n", kLogits);

  double denom = 0.0;
  std::vector<double> probs(kLogits);
  KernelRun runs[2];
  for (const auto variant : {Variant::kBaseline, Variant::kCopift}) {
    const auto generated = generate(KernelId::kExp, variant, cfg);
    // Run via the harness (verifies exp(x) bit-exactly vs the reference).
    runs[variant == Variant::kCopift] = run_kernel(generated);
    if (variant == Variant::kCopift) {
      // Recompute the probabilities from the verified outputs.
      const auto x = exp_inputs(cfg.n, cfg.seed);
      denom = 0.0;
      for (std::uint32_t i = 0; i < kLogits; ++i) {
        probs[i] = ref_exp(x[i]);
        denom += probs[i];
      }
      for (auto& p : probs) p /= denom;
    }
  }

  const auto& base = runs[0];
  const auto& cop = runs[1];
  std::printf("%-10s %10s %8s %10s %12s\n", "variant", "cycles", "IPC", "power mW",
              "energy nJ");
  std::printf("%-10s %10llu %8.2f %10.1f %12.1f\n", "baseline",
              static_cast<unsigned long long>(base.region.cycles), base.ipc(),
              base.power_mw(), base.energy_nj());
  std::printf("%-10s %10llu %8.2f %10.1f %12.1f\n", "COPIFT",
              static_cast<unsigned long long>(cop.region.cycles), cop.ipc(),
              cop.power_mw(), cop.energy_nj());
  std::printf("\nexp-phase speedup: %.2fx, energy saving: %.2fx\n",
              static_cast<double>(base.region.cycles) / cop.region.cycles,
              base.energy_nj() / cop.energy_nj());

  double checksum = 0.0;
  double max_p = 0.0;
  for (const double p : probs) {
    checksum += p;
    max_p = std::max(max_p, p);
  }
  std::printf("softmax sanity: sum=%.6f (should be 1.0), max prob=%.6f\n", checksum, max_p);
  return 0;
}

// Monte Carlo pi estimation on the simulated cluster (paper Section III-A):
// integer PRN generation and FP hit testing run as cooperative parallel
// threads under COPIFT, and the estimate is read back from TCDM.
#include <cstdio>

#include "common/bits.hpp"
#include "kernels/runner.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"

int main() {
  using namespace copift;
  using namespace copift::kernels;

  std::printf("Monte Carlo pi with cooperative integer/FP threads (COPIFT)\n\n");
  std::printf("%10s %12s %10s %8s %9s\n", "samples", "estimate", "cycles", "IPC",
              "samples/kcycle");
  for (const std::uint32_t n : {768u, 3072u, 12288u, 49152u}) {
    KernelConfig cfg;
    cfg.n = n;
    cfg.block = 96;
    cfg.seed = 7;
    const auto generated = generate(KernelId::kPiXoshiro, Variant::kCopift, cfg);
    sim::Cluster cluster(rvasm::assemble(generated.source));
    populate_inputs(cluster, generated);
    cluster.run();
    const double hits =
        bit_cast<double>(cluster.memory().load64(cluster.program().symbol("result")));
    const double estimate = 4.0 * hits / n;
    const auto& c = cluster.counters();
    std::printf("%10u %12.6f %10llu %8.2f %9.1f\n", n, estimate,
                static_cast<unsigned long long>(c.cycles), c.ipc(),
                1000.0 * n / static_cast<double>(c.cycles));
  }
  std::printf("\n(pi = 3.141593; the estimate converges as 1/sqrt(n))\n");

  // Cross-check against the baseline at one size.
  KernelConfig cfg;
  cfg.n = 12288;
  cfg.block = 96;
  cfg.seed = 7;
  const auto base = run_kernel(generate(KernelId::kPiXoshiro, Variant::kBaseline, cfg));
  const auto cop = run_kernel(generate(KernelId::kPiXoshiro, Variant::kCopift, cfg));
  std::printf("\nAt n=12288: baseline %llu cycles, COPIFT %llu cycles (%.2fx speedup),\n"
              "both verified bit-exactly against the reference PRNG streams.\n",
              static_cast<unsigned long long>(base.region.cycles),
              static_cast<unsigned long long>(cop.region.cycles),
              static_cast<double>(base.region.cycles) / cop.region.cycles);
  return 0;
}

// Quickstart: assemble a small program for the simulated Snitch cluster,
// run it, and inspect performance counters — the library's core workflow.
//
//   $ ./examples/quickstart
//
// The program computes a dot product two ways: a plain RV32G loop, and a
// dual-issue version using SSR streams + an FREP loop, and prints the IPC
// of both (the COPIFT building blocks, before any kernel-level machinery).
#include <cstdio>

#include "common/bits.hpp"
#include "rvasm/assembler.hpp"
#include "sim/cluster.hpp"

namespace {

constexpr unsigned kN = 256;

const char* kPlain = R"(
.data
.align 3
result: .space 8
xvec: .space 2048          # 256 doubles
yvec: .space 2048
.text
_start:
  la a0, xvec
  la a1, yvec
  li t0, 256
  fcvt.d.w fa0, zero       # acc = 0
  csrwi region, 1
loop:
  fld fa1, 0(a0)
  fld fa2, 0(a1)
  fmadd.d fa0, fa1, fa2, fa0
  addi a0, a0, 8
  addi a1, a1, 8
  addi t0, t0, -1
  bnez t0, loop
  csrwi region, 2
  la a2, result
  fsd fa0, 0(a2)
  csrr t1, fpss            # drain the FP subsystem
  ecall
)";

const char* kStreamed = R"(
.data
.align 3
result: .space 8
xvec: .space 2048
yvec: .space 2048
.text
_start:
  csrsi ssr, 1             # map ft0/ft1 to stream lanes
  li t0, 255
  scfgwi t0, 1             # lane0 bound0 = N-1
  scfgwi t0, 33            # lane1 bound0 = N-1
  li t0, 8
  scfgwi t0, 5             # lane0 stride = 8
  scfgwi t0, 37            # lane1 stride = 8
  fcvt.d.w fa0, zero
  fcvt.d.w fa1, zero
  fcvt.d.w fa2, zero
  fcvt.d.w fa3, zero
  csrwi region, 1
  la t0, xvec
  scfgwi t0, 24            # lane0 RPTR -> x
  la t0, yvec
  scfgwi t0, 56            # lane1 RPTR -> y
  li t0, 63                # 64 FREP iterations x 4 accumulators
  frep.o t0, 4
  fmadd.d fa0, ft0, ft1, fa0
  fmadd.d fa1, ft0, ft1, fa1
  fmadd.d fa2, ft0, ft1, fa2
  fmadd.d fa3, ft0, ft1, fa3
  csrr t1, fpss            # wait for the FREP to finish
  csrci ssr, 1
  fadd.d fa0, fa0, fa1
  fadd.d fa2, fa2, fa3
  fadd.d fa0, fa0, fa2
  csrwi region, 2
  la a2, result
  fsd fa0, 0(a2)
  csrr t1, fpss
  ecall
)";

double run_one(const char* src, const char* name) {
  using namespace copift;
  sim::Cluster cluster(rvasm::assemble(src));
  // Fill x[i] = i/64, y[i] = 2 - i/128.
  const auto x = cluster.program().symbol("xvec");
  const auto y = cluster.program().symbol("yvec");
  for (unsigned i = 0; i < kN; ++i) {
    cluster.memory().store64(x + i * 8, bit_cast<std::uint64_t>(i / 64.0));
    cluster.memory().store64(y + i * 8, bit_cast<std::uint64_t>(2.0 - i / 128.0));
  }
  cluster.run();
  const double result =
      bit_cast<double>(cluster.memory().load64(cluster.program().symbol("result")));
  const auto delta =
      cluster.regions()[1].snapshot.minus(cluster.regions()[0].snapshot);
  std::printf("%-22s dot=%10.4f  cycles=%5llu  IPC=%.2f\n", name, result,
              static_cast<unsigned long long>(delta.cycles), delta.ipc());
  return result;
}

}  // namespace

int main() {
  std::printf("COPIFT quickstart: dot product on the simulated Snitch cluster\n\n");
  const double a = run_one(kPlain, "plain RV32G loop:");
  const double b = run_one(kStreamed, "SSR + FREP dual-issue:");
  std::printf("\nresults match: %s\n", a == b ? "yes" : "NO (bug!)");
  std::printf("The streamed version eliminates loads and loop overhead entirely;\n"
              "the integer core is free to run other work while the FREP replays.\n");
  return 0;
}
